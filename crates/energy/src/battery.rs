//! Bounded battery store with a Ni-MH-style charging model.
//!
//! The paper models recharge time after the Panasonic Ni-MH handbook [15]:
//! charging proceeds at a roughly constant rate over most of the capacity
//! and tapers as the cell approaches full charge. [`ChargeModel`] captures
//! that shape with a piecewise-linear acceptance curve so that recharge
//! *duration* as a function of the energy deficit behaves like the handbook
//! curves without modeling cell chemistry.

use crate::units;
use serde::{Deserialize, Serialize};

/// Charging-rate model: the fraction of the charger's nominal power a
/// battery accepts as a function of its state of charge.
///
/// Below `taper_start` (fraction of capacity) the battery accepts the full
/// nominal power; from there acceptance falls linearly to `min_accept` at
/// 100 % charge. `ChargeModel::ideal()` disables the taper (constant power),
/// which is useful in unit tests and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeModel {
    /// State-of-charge fraction where the taper begins (e.g. 0.9).
    pub taper_start: f64,
    /// Acceptance fraction at 100 % state of charge (e.g. 0.2).
    pub min_accept: f64,
}

impl ChargeModel {
    /// Ni-MH-style default: full-rate charging until 90 % state of charge,
    /// tapering to 20 % acceptance at full.
    pub const fn nimh() -> Self {
        Self {
            taper_start: 0.9,
            min_accept: 0.2,
        }
    }

    /// Constant-power charging with no taper.
    pub const fn ideal() -> Self {
        Self {
            taper_start: 1.0,
            min_accept: 1.0,
        }
    }

    /// Acceptance fraction (0..=1) at state-of-charge `soc` (0..=1).
    pub fn acceptance(&self, soc: f64) -> f64 {
        let soc = soc.clamp(0.0, 1.0);
        if soc <= self.taper_start || self.taper_start >= 1.0 {
            1.0
        } else {
            let t = (soc - self.taper_start) / (1.0 - self.taper_start);
            1.0 + t * (self.min_accept - 1.0)
        }
    }
}

impl Default for ChargeModel {
    fn default() -> Self {
        Self::nimh()
    }
}

/// An energy store bounded to `[0, capacity]` Joules.
///
/// All mutation goes through [`Battery::draw`] and [`Battery::charge_for`] /
/// [`Battery::recharge`], which enforce the bounds and report the energy
/// actually moved, so callers can do exact bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: f64,
    level: f64,
    model: ChargeModel,
}

impl Battery {
    /// New battery at full charge.
    ///
    /// # Panics
    /// Panics unless `capacity` is strictly positive and finite.
    pub fn full(capacity: f64) -> Self {
        Self::with_level(capacity, capacity)
    }

    /// New battery with an explicit initial level (clamped to capacity).
    ///
    /// # Panics
    /// Panics unless `capacity` is strictly positive and finite and `level`
    /// is non-negative and finite.
    pub fn with_level(capacity: f64, level: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive, got {capacity}"
        );
        assert!(
            level.is_finite() && level >= 0.0,
            "level must be non-negative, got {level}"
        );
        Self {
            capacity,
            level: level.min(capacity),
            model: ChargeModel::nimh(),
        }
    }

    /// The paper's sensor battery: two AAA Panasonic Ni-MH cells providing a
    /// 3 V supply at ≈1000 mAh → 10.8 kJ.
    pub fn two_aaa_nimh() -> Self {
        Self::full(units::battery_energy_j(1000.0, 3.0))
    }

    /// Replaces the charge model (builder style).
    pub fn with_charge_model(mut self, model: ChargeModel) -> Self {
        self.model = model;
        self
    }

    /// Capacity in Joules.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The charging model in effect (simulation-snapshot access; pair with
    /// [`Battery::with_level`] + [`Battery::with_charge_model`] to rebuild
    /// the exact battery).
    #[inline]
    pub fn charge_model(&self) -> ChargeModel {
        self.model
    }

    /// Current level in Joules.
    #[inline]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// State of charge as a fraction of capacity (0..=1).
    #[inline]
    pub fn soc(&self) -> f64 {
        self.level / self.capacity
    }

    /// Energy demand `d_i` of §IV-A: capacity minus current level.
    #[inline]
    pub fn deficit(&self) -> f64 {
        self.capacity - self.level
    }

    /// True when no energy remains (the sensor is nonfunctional).
    #[inline]
    pub fn is_depleted(&self) -> bool {
        self.level <= 0.0
    }

    /// True when full (within floating-point slack).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.level >= self.capacity - 1e-9
    }

    /// Draws up to `joules` and returns the energy actually delivered (less
    /// than `joules` when the battery empties).
    ///
    /// # Panics
    /// Panics on negative or non-finite `joules`.
    pub fn draw(&mut self, joules: f64) -> f64 {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "draw must be non-negative, got {joules}"
        );
        let delivered = joules.min(self.level);
        self.level -= delivered;
        delivered
    }

    /// Deposits up to `joules` ignoring the charge-rate model (used when the
    /// delivered amount was already rate-limited by the charger). Returns
    /// the energy actually stored.
    ///
    /// # Panics
    /// Panics on negative or non-finite `joules`.
    pub fn recharge(&mut self, joules: f64) -> f64 {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "recharge must be non-negative, got {joules}"
        );
        let stored = joules.min(self.deficit());
        self.level += stored;
        stored
    }

    /// Charges from a source of nominal power `power_w` for `duration_s`
    /// seconds, honoring the charge model's acceptance taper. Returns the
    /// energy stored.
    ///
    /// Integration is stepwise (1 % of capacity per step) which is exact for
    /// the flat region and a close approximation through the taper.
    pub fn charge_for(&mut self, power_w: f64, duration_s: f64) -> f64 {
        assert!(
            power_w.is_finite() && power_w >= 0.0,
            "power must be non-negative"
        );
        assert!(
            duration_s.is_finite() && duration_s >= 0.0,
            "duration must be non-negative"
        );
        let mut remaining = duration_s;
        let mut stored = 0.0;
        let step_energy = self.capacity * 0.01;
        while remaining > 0.0 && !self.is_full() {
            let p = power_w * self.model.acceptance(self.soc());
            if p <= 0.0 {
                break;
            }
            let chunk = step_energy.min(self.deficit());
            let dt = chunk / p;
            if dt >= remaining {
                stored += self.recharge(p * remaining);
                break;
            }
            stored += self.recharge(chunk);
            remaining -= dt;
        }
        stored
    }

    /// Time (s) to charge the battery from its current level back to full
    /// from a source of nominal power `power_w`, honoring the taper.
    ///
    /// Returns `f64::INFINITY` for zero power with a non-zero deficit.
    pub fn time_to_full(&self, power_w: f64) -> f64 {
        assert!(
            power_w.is_finite() && power_w >= 0.0,
            "power must be non-negative"
        );
        if self.is_full() {
            return 0.0;
        }
        if power_w <= 0.0 {
            return f64::INFINITY;
        }
        let mut probe = *self;
        let mut time = 0.0;
        let step_energy = self.capacity * 0.01;
        while !probe.is_full() {
            let p = power_w * probe.model.acceptance(probe.soc());
            let chunk = step_energy.min(probe.deficit());
            time += chunk / p;
            probe.recharge(chunk);
        }
        time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_battery_capacity() {
        let b = Battery::two_aaa_nimh();
        assert!((b.capacity() - 10_800.0).abs() < 1e-9);
        assert!(b.is_full());
    }

    #[test]
    fn draw_reports_delivered_and_floors_at_zero() {
        let mut b = Battery::full(100.0);
        assert_eq!(b.draw(60.0), 60.0);
        assert_eq!(b.draw(60.0), 40.0);
        assert!(b.is_depleted());
        assert_eq!(b.draw(10.0), 0.0);
    }

    #[test]
    fn recharge_caps_at_capacity() {
        let mut b = Battery::with_level(100.0, 90.0);
        assert_eq!(b.recharge(25.0), 10.0);
        assert!(b.is_full());
    }

    #[test]
    fn deficit_is_paper_demand() {
        let mut b = Battery::full(100.0);
        b.draw(37.5);
        assert!((b.deficit() - 37.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_charge_time_is_linear() {
        let mut b = Battery::with_level(100.0, 0.0).with_charge_model(ChargeModel::ideal());
        assert!((b.time_to_full(10.0) - 10.0).abs() < 1e-9);
        let stored = b.charge_for(10.0, 4.0);
        assert!((stored - 40.0).abs() < 1e-9);
        assert!((b.level() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn nimh_taper_slows_the_tail() {
        let empty = Battery::with_level(100.0, 0.0);
        let nearly = Battery::with_level(100.0, 90.0);
        let t_all = empty.time_to_full(10.0);
        let t_tail = nearly.time_to_full(10.0);
        // Flat region: 90 J at 10 W = 9 s; tail takes longer than the 1 s an
        // ideal charger would need.
        assert!(t_tail > 1.0, "taper should slow the last 10%: {t_tail}");
        assert!((t_all - (9.0 + t_tail)).abs() < 1e-6);
    }

    #[test]
    fn charge_for_agrees_with_time_to_full() {
        let b = Battery::with_level(100.0, 35.0);
        let t = b.time_to_full(7.0);
        let mut c = b;
        let stored = c.charge_for(7.0, t + 1e-6);
        assert!((stored - 65.0).abs() < 1e-6);
        assert!(c.is_full());
    }

    #[test]
    fn acceptance_curve_shape() {
        let m = ChargeModel::nimh();
        assert_eq!(m.acceptance(0.0), 1.0);
        assert_eq!(m.acceptance(0.9), 1.0);
        assert!((m.acceptance(1.0) - 0.2).abs() < 1e-12);
        let mid = m.acceptance(0.95);
        assert!(mid < 1.0 && mid > 0.2);
        // Ideal never tapers.
        assert_eq!(ChargeModel::ideal().acceptance(1.0), 1.0);
    }

    #[test]
    fn time_to_full_edge_cases() {
        let full = Battery::full(50.0);
        assert_eq!(full.time_to_full(5.0), 0.0);
        let empty = Battery::with_level(50.0, 0.0);
        assert_eq!(empty.time_to_full(0.0), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn prop_level_always_bounded(
            cap in 1.0f64..10_000.0,
            ops in proptest::collection::vec((0.0f64..5_000.0, proptest::bool::ANY), 0..60),
        ) {
            let mut b = Battery::with_level(cap, cap / 2.0);
            for (amount, is_draw) in ops {
                if is_draw { b.draw(amount); } else { b.recharge(amount); }
                prop_assert!(b.level() >= 0.0);
                prop_assert!(b.level() <= b.capacity() + 1e-9);
            }
        }

        #[test]
        fn prop_charge_conserves_energy(
            cap in 10.0f64..1_000.0,
            start_frac in 0.0f64..1.0,
            power in 0.1f64..50.0,
            dur in 0.0f64..500.0,
        ) {
            let mut b = Battery::with_level(cap, cap * start_frac);
            let before = b.level();
            let stored = b.charge_for(power, dur);
            prop_assert!((b.level() - before - stored).abs() < 1e-6);
            // Never stores more than the source could possibly deliver.
            prop_assert!(stored <= power * dur + 1e-6);
        }

        #[test]
        fn prop_draw_conserves_energy(
            cap in 10.0f64..1_000.0,
            start_frac in 0.0f64..1.0,
            amount in 0.0f64..2_000.0,
        ) {
            let mut b = Battery::with_level(cap, cap * start_frac);
            let before = b.level();
            let got = b.draw(amount);
            prop_assert!((before - b.level() - got).abs() < 1e-9);
            prop_assert!(got <= amount + 1e-12);
        }
    }
}
