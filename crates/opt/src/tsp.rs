//! TSP solvers: nearest-neighbour (the paper's intra-cluster heuristic,
//! §IV-C), 2-opt improvement, and exact Held-Karp for small instances.

use crate::DistMatrix;

/// Cost of the closed tour visiting `tour` in order and returning to
/// `tour\[0\]`.
pub fn tour_cost(dist: &DistMatrix, tour: &[usize]) -> f64 {
    if tour.len() < 2 {
        return 0.0;
    }
    let mut cost = 0.0;
    for w in tour.windows(2) {
        cost += dist.get(w[0], w[1]);
    }
    cost + dist.get(tour[tour.len() - 1], tour[0])
}

/// Nearest-neighbour construction starting from `start`: repeatedly visit
/// the closest unvisited node. O(n²), the complexity the paper cites \[24\].
///
/// Returns the visit order (a permutation of `0..dist.len()` beginning with
/// `start`).
///
/// # Panics
/// Panics if `start` is out of bounds.
pub fn nearest_neighbor_tour(dist: &DistMatrix, start: usize) -> Vec<usize> {
    let n = dist.len();
    assert!(start < n, "start {start} out of bounds for {n} nodes");
    let mut tour = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut cur = start;
    visited[cur] = true;
    tour.push(cur);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&j| !visited[j])
            .min_by(|&a, &b| dist.get(cur, a).total_cmp(&dist.get(cur, b)))
            .expect("unvisited node must exist");
        visited[next] = true;
        tour.push(next);
        cur = next;
    }
    tour
}

/// 2-opt local search on a closed tour: repeatedly reverses segments while
/// that shortens the tour. Keeps `tour\[0\]` fixed (the depot). Terminates at
/// a local optimum; never returns a longer tour than the input.
pub fn two_opt(dist: &DistMatrix, tour: &mut [usize]) {
    let n = tour.len();
    if n < 4 {
        return;
    }
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n - 2 {
            for j in i + 2..n {
                // Edges (i, i+1) and (j, j+1 mod n); skip the wrap pair that
                // shares a node with (0, 1).
                let jn = (j + 1) % n;
                if jn == i {
                    continue;
                }
                let a = tour[i];
                let b = tour[i + 1];
                let c = tour[j];
                let d = tour[jn];
                let delta = dist.get(a, c) + dist.get(b, d) - dist.get(a, b) - dist.get(c, d);
                if delta < -1e-12 {
                    tour[i + 1..=j].reverse();
                    improved = true;
                }
            }
        }
    }
}

/// Exact Held-Karp dynamic program for the minimum closed tour over all
/// nodes, anchored at node 0. O(n²·2ⁿ) time / O(n·2ⁿ) space — only for
/// small instances (the property tests and benches cap n at ~14).
///
/// Returns `(tour, cost)` with `tour\[0\] == 0`.
///
/// # Panics
/// Panics for `n > 20` (the table would exceed memory) and for `n == 0`.
pub fn held_karp_tour(dist: &DistMatrix) -> (Vec<usize>, f64) {
    let n = dist.len();
    assert!(n > 0, "held_karp requires at least one node");
    assert!(n <= 20, "held_karp limited to 20 nodes, got {n}");
    if n == 1 {
        return (vec![0], 0.0);
    }
    let full = 1usize << (n - 1); // masks over nodes 1..n
                                  // dp[mask][last] = min cost path 0 → … → last visiting exactly
                                  // {nodes in mask} (mask bits index nodes 1..n, last ∈ mask).
    let mut dp = vec![f64::INFINITY; full * (n - 1)];
    let mut parent = vec![usize::MAX; full * (n - 1)];
    for last in 0..n - 1 {
        dp[(1 << last) * (n - 1) + last] = dist.get(0, last + 1);
    }
    for mask in 1..full {
        for last in 0..n - 1 {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * (n - 1) + last];
            if !cur.is_finite() {
                continue;
            }
            let rest = (!mask) & (full - 1);
            let mut bits = rest;
            while bits != 0 {
                let nxt = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let nmask = mask | (1 << nxt);
                let cand = cur + dist.get(last + 1, nxt + 1);
                let slot = nmask * (n - 1) + nxt;
                if cand < dp[slot] {
                    dp[slot] = cand;
                    parent[slot] = last;
                }
            }
        }
    }
    let final_mask = full - 1;
    let (mut best_last, mut best_cost) = (0, f64::INFINITY);
    for last in 0..n - 1 {
        let c = dp[final_mask * (n - 1) + last] + dist.get(last + 1, 0);
        if c < best_cost {
            best_cost = c;
            best_last = last;
        }
    }
    // Reconstruct.
    let mut tour = Vec::with_capacity(n);
    let mut mask = final_mask;
    let mut last = best_last;
    while mask != 0 {
        tour.push(last + 1);
        let p = parent[mask * (n - 1) + last];
        mask &= !(1 << last);
        last = p;
    }
    tour.push(0);
    tour.reverse();
    (tour, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wrsn_geom::Point2;

    fn square() -> DistMatrix {
        DistMatrix::from_points(&[
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ])
    }

    #[test]
    fn tour_cost_of_square() {
        let m = square();
        assert!((tour_cost(&m, &[0, 1, 2, 3]) - 4.0).abs() < 1e-12);
        // Crossing diagonal tour is longer.
        assert!(tour_cost(&m, &[0, 2, 1, 3]) > 4.0);
        assert_eq!(tour_cost(&m, &[0]), 0.0);
    }

    #[test]
    fn nearest_neighbor_visits_everything_once() {
        let m = square();
        let t = nearest_neighbor_tour(&m, 2);
        assert_eq!(t[0], 2);
        let mut sorted = t.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_opt_fixes_crossing() {
        let m = square();
        let mut t = vec![0, 2, 1, 3]; // crossing tour
        two_opt(&m, &mut t);
        assert!((tour_cost(&m, &t) - 4.0).abs() < 1e-12);
        assert_eq!(t[0], 0);
    }

    #[test]
    fn held_karp_square_is_perimeter() {
        let (t, c) = held_karp_tour(&square());
        assert!((c - 4.0).abs() < 1e-12);
        assert_eq!(t[0], 0);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn held_karp_trivial_sizes() {
        let one = DistMatrix::from_points(&[Point2::ORIGIN]);
        assert_eq!(held_karp_tour(&one), (vec![0], 0.0));
        let two = DistMatrix::from_points(&[Point2::ORIGIN, Point2::new(3.0, 4.0)]);
        let (t, c) = held_karp_tour(&two);
        assert_eq!(t, vec![0, 1]);
        assert!((c - 10.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_two_opt_never_worsens(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..12)
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let m = DistMatrix::from_points(&pts);
            let mut t = nearest_neighbor_tour(&m, 0);
            let before = tour_cost(&m, &t);
            two_opt(&m, &mut t);
            let after = tour_cost(&m, &t);
            prop_assert!(after <= before + 1e-9);
            let mut sorted = t.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..pts.len()).collect::<Vec<_>>());
        }

        #[test]
        fn prop_held_karp_lower_bounds_heuristics(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..9)
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let m = DistMatrix::from_points(&pts);
            let (ht, hc) = held_karp_tour(&m);
            prop_assert!((tour_cost(&m, &ht) - hc).abs() < 1e-6, "reported cost matches tour");
            let mut nn = nearest_neighbor_tour(&m, 0);
            prop_assert!(hc <= tour_cost(&m, &nn) + 1e-9);
            two_opt(&m, &mut nn);
            prop_assert!(hc <= tour_cost(&m, &nn) + 1e-9);
        }
    }
}
