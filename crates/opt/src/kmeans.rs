//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! The paper's Partition-Scheme (§IV-D-1) splits the recharge node list into
//! `m` geographic groups with "the well-known K-means [23] method",
//! minimizing the Within-Cluster Sum of Squares (WCSS, Eq. 15); each group's
//! mean position seeds the corresponding RV.

use rand::Rng;
use wrsn_geom::Point2;

/// K-means configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on centroid movement (meters).
    pub tol: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-6,
        }
    }
}

/// Result of a K-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `assignment[i]` = cluster index of point `i` (in `0..k`).
    pub assignment: Vec<usize>,
    /// Final cluster centroids (`μ_i` of Eq. 15). Length `k`.
    pub centroids: Vec<Point2>,
    /// Final Within-Cluster Sum of Squares (Eq. 15 objective).
    pub wcss: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Runs k-means++ seeded Lloyd iterations to partition `points` into `k`
/// clusters.
///
/// When `k >= points.len()`, every point gets its own cluster (remaining
/// centroids duplicate existing points so the result still has `k`
/// centroids with empty clusters at the end).
///
/// # Panics
/// Panics when `k == 0` or `points` is empty.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Point2],
    k: usize,
    config: &KMeansConfig,
    rng: &mut R,
) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!points.is_empty(), "kmeans requires at least one point");
    let n = points.len();
    let k_eff = k.min(n);

    // k-means++ seeding: first centroid uniform, then proportional to the
    // squared distance to the nearest chosen centroid.
    let mut centroids: Vec<Point2> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)]);
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| p.distance_squared(centroids[0]))
        .collect();
    while centroids.len() < k_eff {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut r = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if r < w {
                    idx = i;
                    break;
                }
                r -= w;
            }
            idx
        };
        let c = points[chosen];
        centroids.push(c);
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(p.distance_squared(c));
        }
    }
    // Pad with duplicates when k > n so callers always get k centroids.
    while centroids.len() < k {
        centroids.push(centroids[centroids.len() % k_eff]);
    }

    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        // Assign.
        for (i, p) in points.iter().enumerate() {
            assignment[i] = (0..k)
                .min_by(|&a, &b| {
                    p.distance_squared(centroids[a])
                        .total_cmp(&p.distance_squared(centroids[b]))
                })
                .expect("k > 0");
        }
        // Update.
        let mut sums = vec![Point2::ORIGIN; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            sums[assignment[i]] = sums[assignment[i]] + *p;
            counts[assignment[i]] += 1;
        }
        let mut moved: f64 = 0.0;
        for c in 0..k {
            if counts[c] > 0 {
                let nc = sums[c] / counts[c] as f64;
                moved = moved.max(nc.distance(centroids[c]));
                centroids[c] = nc;
            }
            // Empty clusters keep their centroid (k-means++ makes this rare).
        }
        if moved <= config.tol {
            break;
        }
    }

    let wcss = points
        .iter()
        .enumerate()
        .map(|(i, p)| p.distance_squared(centroids[assignment[i]]))
        .sum();
    KMeansResult {
        assignment,
        centroids,
        wcss,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Point2::new(i as f64 * 0.1, 0.0)); // blob near origin
            pts.push(Point2::new(100.0 + i as f64 * 0.1, 0.0)); // far blob
        }
        pts
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let pts = two_blobs();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let res = kmeans(&pts, 2, &KMeansConfig::default(), &mut rng);
        // All even-index points (blob A) share a cluster, odd share the other.
        let a = res.assignment[0];
        assert!(pts.iter().enumerate().all(|(i, _)| {
            if i % 2 == 0 {
                res.assignment[i] == a
            } else {
                res.assignment[i] != a
            }
        }));
        assert!(
            res.wcss < 10.0,
            "tight blobs should have tiny WCSS: {}",
            res.wcss
        );
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(1.0, 3.0),
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let res = kmeans(&pts, 1, &KMeansConfig::default(), &mut rng);
        let c = res.centroids[0];
        assert!((c.x - 1.0).abs() < 1e-9 && (c.y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_n_still_assigns() {
        let pts = [Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let res = kmeans(&pts, 5, &KMeansConfig::default(), &mut rng);
        assert_eq!(res.centroids.len(), 5);
        assert!(res.assignment.iter().all(|&a| a < 5));
        assert!(res.wcss < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        let a = kmeans(&pts, 3, &KMeansConfig::default(), &mut r1);
        let b = kmeans(&pts, 3, &KMeansConfig::default(), &mut r2);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.wcss, b.wcss);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_assignment_is_nearest_centroid(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..60),
            k in 1usize..6,
            seed in 0u64..1000,
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let res = kmeans(&pts, k, &KMeansConfig::default(), &mut rng);
            for (i, p) in pts.iter().enumerate() {
                let assigned = p.distance_squared(res.centroids[res.assignment[i]]);
                for c in &res.centroids {
                    prop_assert!(assigned <= p.distance_squared(*c) + 1e-9);
                }
            }
            // WCSS of the result is no worse than assigning everything to
            // the global mean (the k=1 solution).
            let mean = Point2::centroid(&pts).unwrap();
            let base: f64 = pts.iter().map(|p| p.distance_squared(mean)).sum();
            prop_assert!(res.wcss <= base + 1e-6);
        }
    }
}
