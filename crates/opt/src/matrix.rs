//! Symmetric distance matrix for the TSP solvers.

use wrsn_geom::Point2;

/// Dense symmetric distance matrix over a fixed point set.
///
/// Stores the full n×n array (not just a triangle): the TSP inner loops are
/// dominated by random lookups, and the branch-free `i*n + j` indexing is
/// faster than triangle arithmetic for the instance sizes involved.
#[derive(Debug, Clone)]
pub struct DistMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistMatrix {
    /// Builds the Euclidean distance matrix of `points`.
    pub fn from_points(points: &[Point2]) -> Self {
        let n = points.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = points[i].distance(points[j]);
                d[i * n + j] = dist;
                d[j * n + i] = dist;
            }
        }
        Self { n, d }
    }

    /// Builds from an explicit cost function (must be symmetric; the
    /// constructor symmetrizes by evaluating only `i < j`).
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut cost: F) -> Self {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let c = cost(i, j);
                assert!(
                    c.is_finite() && c >= 0.0,
                    "costs must be finite and non-negative"
                );
                d[i * n + j] = c;
                d[j * n + i] = c;
            }
        }
        Self { n, d }
    }

    /// Matrix dimension (number of points).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a 0×0 matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.d[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matrix_is_symmetric_with_zero_diagonal() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 4.0),
            Point2::new(6.0, 8.0),
        ];
        let m = DistMatrix::from_points(&pts);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert!((m.get(0, 1) - 5.0).abs() < 1e-12);
        assert!((m.get(0, 2) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn from_fn_symmetrizes() {
        let m = DistMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(2, 1), 3.0);
    }
}
