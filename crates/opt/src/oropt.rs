//! Or-opt local search: relocate short segments (1–3 consecutive nodes)
//! to a better position. Complements 2-opt — Or-opt moves are not
//! expressible as a single 2-opt reversal, and the pair together forms the
//! standard lightweight TSP improvement stack.

use crate::{tour_cost, DistMatrix};

/// Or-opt on a closed tour: repeatedly relocates segments of length 1–3 to
/// the position that most shortens the tour, until no improving move
/// exists. Keeps `tour[0]` fixed (the depot). Never lengthens the tour.
pub fn or_opt(dist: &DistMatrix, tour: &mut Vec<usize>) {
    let n = tour.len();
    if n < 4 {
        return;
    }
    let mut improved = true;
    while improved {
        improved = false;
        'moves: for seg_len in 1..=3usize.min(n - 2) {
            // Segment starts at positions 1.. (never moves the depot).
            for start in 1..=(n - seg_len) {
                let end = start + seg_len; // exclusive
                let prev = tour[start - 1];
                let first = tour[start];
                let last = tour[end - 1];
                let next = tour[end % n];
                let removal_gain =
                    dist.get(prev, first) + dist.get(last, next) - dist.get(prev, next);
                if removal_gain <= 1e-12 {
                    continue;
                }
                // Try reinsertion between every remaining consecutive pair.
                for pos in 0..n {
                    // `pos` indexes the edge (tour[pos], tour[pos+1 mod n])
                    // in the tour *after* removal; skip edges inside or
                    // adjacent to the segment.
                    if pos >= start.saturating_sub(1) && pos < end {
                        continue;
                    }
                    let a = tour[pos];
                    let b = tour[(pos + 1) % n];
                    let insert_cost = dist.get(a, first) + dist.get(last, b) - dist.get(a, b);
                    if insert_cost < removal_gain - 1e-12 {
                        // Perform the relocation.
                        let seg: Vec<usize> = tour.drain(start..end).collect();
                        // Recompute the insertion index in the shrunken tour.
                        let a_idx = tour.iter().position(|&v| v == a).expect("anchor survived");
                        let at = a_idx + 1;
                        for (k, v) in seg.into_iter().enumerate() {
                            tour.insert(at + k, v);
                        }
                        improved = true;
                        continue 'moves;
                    }
                }
            }
        }
    }
}

/// Convenience: nearest-neighbour construction + 2-opt + Or-opt, the full
/// lightweight improvement stack. Returns the tour and its cost.
pub fn improve_tour(dist: &DistMatrix, start: usize) -> (Vec<usize>, f64) {
    let mut tour = crate::nearest_neighbor_tour(dist, start);
    crate::two_opt(dist, &mut tour);
    or_opt(dist, &mut tour);
    crate::two_opt(dist, &mut tour);
    let cost = tour_cost(dist, &tour);
    (tour, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{held_karp_tour, nearest_neighbor_tour, two_opt};
    use proptest::prelude::*;
    use wrsn_geom::Point2;

    #[test]
    fn relocates_an_out_of_place_node() {
        // Points on a line; NN from 0 visits in order, but a hand-built
        // tour with node 3 misplaced must be repaired.
        let pts: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 10.0, 0.0)).collect();
        let m = DistMatrix::from_points(&pts);
        let mut tour = vec![0, 3, 1, 2, 4];
        let before = tour_cost(&m, &tour);
        or_opt(&m, &mut tour);
        let after = tour_cost(&m, &tour);
        assert!(after < before, "{before} -> {after}");
        assert!((after - tour_cost(&m, &[0, 1, 2, 3, 4])).abs() < 1e-9);
    }

    #[test]
    fn depot_stays_first() {
        let pts: Vec<Point2> = (0..7)
            .map(|i| Point2::new((i * 13 % 7) as f64, (i * 29 % 5) as f64))
            .collect();
        let m = DistMatrix::from_points(&pts);
        let mut tour = nearest_neighbor_tour(&m, 0);
        or_opt(&m, &mut tour);
        assert_eq!(tour[0], 0);
    }

    #[test]
    fn tiny_tours_are_untouched() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ];
        let m = DistMatrix::from_points(&pts);
        let mut tour = vec![0, 2, 1];
        or_opt(&m, &mut tour);
        assert_eq!(tour, vec![0, 2, 1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_or_opt_never_worsens_and_preserves_nodes(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..14)
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let m = DistMatrix::from_points(&pts);
            let mut tour = nearest_neighbor_tour(&m, 0);
            let before = tour_cost(&m, &tour);
            or_opt(&m, &mut tour);
            let after = tour_cost(&m, &tour);
            prop_assert!(after <= before + 1e-9);
            let mut sorted = tour.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..pts.len()).collect::<Vec<_>>());
        }

        #[test]
        fn prop_stack_is_at_least_as_good_as_two_opt_alone(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..12)
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let m = DistMatrix::from_points(&pts);
            let mut nn2 = nearest_neighbor_tour(&m, 0);
            two_opt(&m, &mut nn2);
            let (_, stacked) = improve_tour(&m, 0);
            prop_assert!(stacked <= tour_cost(&m, &nn2) + 1e-9);
            // And never better than the optimum.
            if pts.len() <= 10 {
                let (_, opt) = held_karp_tour(&m);
                prop_assert!(stacked >= opt - 1e-9);
            }
        }
    }
}
