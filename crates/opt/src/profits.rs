//! Exact solver for the paper's recharge scheduling problem (§IV-A).
//!
//! The paper formulates recharge scheduling as a mixed-integer program —
//! maximize recharged demand minus RV travel cost over up to `m` closed
//! tours from the base station, each respecting the RV energy capacity
//! (constraints (3)–(14)) — and proves it NP-hard by reduction from TSP with
//! Profits. The authors only compare heuristics; we additionally implement
//! this exact dynamic program so the heuristics can be *validated* against
//! true optima on small instances (≤ ~10 nodes).
//!
//! Algorithm: Held-Karp style DP computes, for every node subset `S`, the
//! cheapest closed tour through `S` anchored at the depot; a second DP over
//! subset partitions assigns subsets to vehicles. O(3ⁿ·m + 2ⁿ·n²).

use crate::DistMatrix;
use wrsn_geom::Point2;

/// A small instance of the recharge-profit problem.
#[derive(Debug, Clone)]
pub struct ProfitInstance {
    /// Base station position (tours start and end here, constraint (3)).
    pub depot: Point2,
    /// Positions of the nodes on the recharge node list.
    pub nodes: Vec<Point2>,
    /// Energy demand `d_i` (J) of each node.
    pub demands: Vec<f64>,
    /// Travel cost rate `e_m` (J/m).
    pub cost_per_m: f64,
    /// RV energy capacity `C_r` (J): demand served + travel cost per tour
    /// must not exceed it (constraint (7)). `None` = uncapacitated (the
    /// pure TSP-with-Profits special case of §IV-A).
    pub capacity: Option<f64>,
}

impl ProfitInstance {
    /// Profit of a single closed tour visiting `tour` (indices into
    /// `nodes`) from the depot: served demand minus travel cost. Also
    /// returns whether the tour respects the capacity.
    pub fn tour_profit(&self, tour: &[usize]) -> (f64, bool) {
        let demand: f64 = tour.iter().map(|&i| self.demands[i]).sum();
        let mut travel_m = 0.0;
        let mut prev = self.depot;
        for &i in tour {
            travel_m += prev.distance(self.nodes[i]);
            prev = self.nodes[i];
        }
        if !tour.is_empty() {
            travel_m += prev.distance(self.depot);
        }
        let cost = travel_m * self.cost_per_m;
        let feasible = self.capacity.is_none_or(|cr| demand + cost <= cr + 1e-9);
        (demand - cost, feasible)
    }

    /// Total profit of a multi-vehicle plan; `None` if any tour violates
    /// capacity or a node is served twice (constraint (8)).
    pub fn plan_profit(&self, tours: &[Vec<usize>]) -> Option<f64> {
        let mut seen = vec![false; self.nodes.len()];
        let mut total = 0.0;
        for tour in tours {
            for &i in tour {
                if seen[i] {
                    return None;
                }
                seen[i] = true;
            }
            let (p, feasible) = self.tour_profit(tour);
            if !feasible {
                return None;
            }
            total += p;
        }
        Some(total)
    }
}

/// An optimal solution: the achieved profit and one tour per vehicle
/// (possibly empty — serving nothing is allowed and earns zero).
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Optimal objective value (Eq. 2).
    pub profit: f64,
    /// One visit order per vehicle, indices into `ProfitInstance::nodes`.
    pub tours: Vec<Vec<usize>>,
}

/// Exhaustively optimal multi-vehicle recharge plan.
///
/// # Panics
/// Panics when the instance has more than 12 nodes (the subset DP would
/// blow up), when demand/node lengths mismatch, or `num_vehicles == 0`.
pub fn solve_exact(inst: &ProfitInstance, num_vehicles: usize) -> ExactSolution {
    let n = inst.nodes.len();
    assert_eq!(n, inst.demands.len(), "one demand per node required");
    assert!(num_vehicles > 0, "need at least one vehicle");
    assert!(n <= 12, "exact solver limited to 12 nodes, got {n}");
    if n == 0 {
        return ExactSolution {
            profit: 0.0,
            tours: vec![Vec::new(); num_vehicles],
        };
    }

    // Distance matrix with the depot as index 0, nodes shifted by +1.
    let mut all = Vec::with_capacity(n + 1);
    all.push(inst.depot);
    all.extend_from_slice(&inst.nodes);
    let dist = DistMatrix::from_points(&all);

    let full = 1usize << n;
    // path[mask][last] = cheapest depot→…→last path covering exactly mask.
    let mut path = vec![f64::INFINITY; full * n];
    let mut parent = vec![usize::MAX; full * n];
    for v in 0..n {
        path[(1 << v) * n + v] = dist.get(0, v + 1);
    }
    for mask in 1..full {
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = path[mask * n + last];
            if !cur.is_finite() {
                continue;
            }
            let mut rest = (!mask) & (full - 1);
            while rest != 0 {
                let nxt = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let nmask = mask | (1 << nxt);
                let cand = cur + dist.get(last + 1, nxt + 1);
                if cand < path[nmask * n + nxt] {
                    path[nmask * n + nxt] = cand;
                    parent[nmask * n + nxt] = last;
                }
            }
        }
    }

    // Best single-tour profit per subset (−∞ when capacity-infeasible).
    let mut demand_of = vec![0.0f64; full];
    for mask in 1..full {
        let low = mask.trailing_zeros() as usize;
        demand_of[mask] = demand_of[mask & (mask - 1)] + inst.demands[low];
    }
    let mut tour_cost = vec![f64::INFINITY; full];
    let mut tour_last = vec![usize::MAX; full];
    tour_cost[0] = 0.0;
    for mask in 1..full {
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let c = path[mask * n + last] + dist.get(last + 1, 0);
            if c < tour_cost[mask] {
                tour_cost[mask] = c;
                tour_last[mask] = last;
            }
        }
    }
    let profit_of = |mask: usize| -> f64 {
        if mask == 0 {
            return 0.0;
        }
        let cost = tour_cost[mask] * inst.cost_per_m;
        let demand = demand_of[mask];
        if inst.capacity.is_some_and(|cr| demand + cost > cr + 1e-9) {
            f64::NEG_INFINITY
        } else {
            demand - cost
        }
    };

    // Partition DP over vehicles: f[mask] = best profit covering exactly
    // `mask` with k vehicles; iterate k from 1 to m keeping best choice.
    let mut f: Vec<f64> = (0..full).map(profit_of).collect();
    let mut choice: Vec<Vec<usize>> = vec![(0..full).collect()]; // k=1: the whole mask
    for _k in 2..=num_vehicles {
        let prev = f.clone();
        let mut ch = vec![0usize; full];
        let mut cur = vec![f64::NEG_INFINITY; full];
        for mask in 0..full {
            // Enumerate submasks `s` of `mask` served by the new vehicle.
            let mut s = mask;
            loop {
                let rest = mask ^ s;
                let p = profit_of(s);
                if p.is_finite() && prev[rest].is_finite() {
                    let cand = p + prev[rest];
                    if cand > cur[mask] {
                        cur[mask] = cand;
                        ch[mask] = s;
                    }
                }
                if s == 0 {
                    break;
                }
                s = (s - 1) & mask;
            }
        }
        f = cur;
        choice.push(ch);
    }

    let best_mask = (0..full)
        .max_by(|&a, &b| f[a].total_cmp(&f[b]))
        .expect("nonempty");
    let best_profit = f[best_mask].max(0.0);

    // Reconstruct per-vehicle subsets, then per-subset visit orders.
    let mut subsets = Vec::with_capacity(num_vehicles);
    let mut mask = if f[best_mask] > 0.0 { best_mask } else { 0 };
    for k in (0..num_vehicles).rev() {
        let s = if k == 0 { mask } else { choice[k][mask] };
        subsets.push(s);
        mask ^= s;
    }
    subsets.reverse();

    let reconstruct = |mask: usize| -> Vec<usize> {
        if mask == 0 {
            return Vec::new();
        }
        let mut order = Vec::new();
        let mut m = mask;
        let mut last = tour_last[mask];
        while m != 0 {
            order.push(last);
            let p = parent[m * n + last];
            m &= !(1 << last);
            last = p;
        }
        order.reverse();
        order
    };
    let tours: Vec<Vec<usize>> = subsets.into_iter().map(reconstruct).collect();

    ExactSolution {
        profit: best_profit,
        tours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line_instance() -> ProfitInstance {
        ProfitInstance {
            depot: Point2::new(0.0, 0.0),
            nodes: vec![
                Point2::new(10.0, 0.0),
                Point2::new(20.0, 0.0),
                Point2::new(-10.0, 0.0),
            ],
            demands: vec![100.0, 100.0, 100.0],
            cost_per_m: 1.0,
            capacity: None,
        }
    }

    #[test]
    fn single_vehicle_serves_all_profitable_nodes() {
        let inst = line_instance();
        let sol = solve_exact(&inst, 1);
        // Best tour: 0 → −10 → 10 → 20 → 0 is 10+20+10+20=60? Actually
        // optimal order is −10 then 10 then 20 back: 10+20+10+20 = 60, or
        // 10,20 then −10: 10+10+30+10=60. Profit = 300 − 60 = 240.
        assert!((sol.profit - 240.0).abs() < 1e-9);
        let all: usize = sol.tours.iter().map(Vec::len).sum();
        assert_eq!(all, 3);
        assert_eq!(inst.plan_profit(&sol.tours), Some(sol.profit));
    }

    #[test]
    fn unprofitable_nodes_are_skipped() {
        let inst = ProfitInstance {
            depot: Point2::new(0.0, 0.0),
            nodes: vec![Point2::new(5.0, 0.0), Point2::new(1000.0, 0.0)],
            demands: vec![50.0, 50.0],
            cost_per_m: 1.0,
            capacity: None,
        };
        let sol = solve_exact(&inst, 1);
        // Far node costs 2000 to serve for 50 demand: skip it.
        assert!((sol.profit - 40.0).abs() < 1e-9);
        assert_eq!(sol.tours[0], vec![0]);
    }

    #[test]
    fn capacity_forces_second_vehicle() {
        let inst = ProfitInstance {
            depot: Point2::new(0.0, 0.0),
            nodes: vec![Point2::new(1.0, 0.0), Point2::new(-1.0, 0.0)],
            demands: vec![100.0, 100.0],
            cost_per_m: 1.0,
            // One tour serving both needs 200 demand + 4 travel > 150.
            capacity: Some(150.0),
        };
        let one = solve_exact(&inst, 1);
        let two = solve_exact(&inst, 2);
        assert!(
            (one.profit - 98.0).abs() < 1e-9,
            "single RV serves one node: {}",
            one.profit
        );
        assert!(
            (two.profit - 196.0).abs() < 1e-9,
            "two RVs serve both: {}",
            two.profit
        );
        assert_eq!(inst.plan_profit(&two.tours), Some(two.profit));
    }

    #[test]
    fn empty_instance() {
        let inst = ProfitInstance {
            depot: Point2::ORIGIN,
            nodes: vec![],
            demands: vec![],
            cost_per_m: 1.0,
            capacity: None,
        };
        let sol = solve_exact(&inst, 3);
        assert_eq!(sol.profit, 0.0);
        assert_eq!(sol.tours.len(), 3);
    }

    #[test]
    fn all_nodes_unprofitable_yields_empty_plan() {
        let inst = ProfitInstance {
            depot: Point2::ORIGIN,
            nodes: vec![Point2::new(100.0, 0.0)],
            demands: vec![1.0],
            cost_per_m: 1.0,
            capacity: None,
        };
        let sol = solve_exact(&inst, 2);
        assert_eq!(sol.profit, 0.0);
        assert!(sol.tours.iter().all(Vec::is_empty));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_exact_beats_random_plans(
            pts in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..7),
            demands in proptest::collection::vec(0.0f64..500.0, 7),
            m in 1usize..4,
            cap in proptest::option::of(100.0f64..2_000.0),
        ) {
            let nodes: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let inst = ProfitInstance {
                depot: Point2::new(25.0, 25.0),
                demands: demands[..nodes.len()].to_vec(),
                nodes,
                cost_per_m: 1.0,
                capacity: cap,
            };
            let sol = solve_exact(&inst, m);
            // The reported plan is feasible and matches the profit.
            let replay = inst.plan_profit(&sol.tours);
            prop_assert!(replay.is_some());
            prop_assert!((replay.unwrap() - sol.profit).abs() < 1e-6
                         || (sol.profit == 0.0 && replay.unwrap() <= 1e-9));

            // Single-node plans never beat the optimum.
            for v in 0..inst.nodes.len() {
                let single = vec![vec![v]];
                if let Some(p) = inst.plan_profit(&single) {
                    prop_assert!(sol.profit >= p - 1e-6);
                }
            }
            // Neither does serving everything with vehicle 0 (if feasible).
            let everything = vec![(0..inst.nodes.len()).collect::<Vec<_>>()];
            if let Some(p) = inst.plan_profit(&everything) {
                prop_assert!(sol.profit >= p - 1e-6);
            }
        }
    }
}
