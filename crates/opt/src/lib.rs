//! # wrsn-opt
//!
//! Optimization substrate for the `wrsn` workspace:
//!
//! * [`kmeans`] — the K-means partition (with k-means++ seeding and WCSS
//!   tracking) used by the paper's Partition-Scheme (§IV-D-1, ref. \[23\]).
//! * [`DistMatrix`], [`nearest_neighbor_tour`], [`two_opt`],
//!   [`held_karp_tour`] — TSP machinery: the nearest-neighbour heuristic the
//!   paper uses for intra-cluster tours (§IV-C, ref. \[24\]), a 2-opt
//!   improver, and an exact Held-Karp solver for small instances (oracle in
//!   tests and benches).
//! * [`ProfitInstance`] / [`solve_exact`] — exact branch-free dynamic
//!   program for the paper's NP-hard recharge problem (TSP with Profits,
//!   §IV-A): maximizes recharged demand minus travel cost over up to `m`
//!   capacitated tours. Exponential in node count; used to validate the
//!   heuristics on small instances (the paper itself only compares
//!   heuristics).
//!
//! ```
//! use wrsn_geom::Point2;
//! use wrsn_opt::{kmeans, KMeansConfig};
//! use rand::SeedableRng;
//!
//! let pts: Vec<Point2> = (0..20).map(|i| Point2::new(i as f64, 0.0)).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let res = kmeans(&pts, 2, &KMeansConfig::default(), &mut rng);
//! assert_eq!(res.assignment.len(), 20);
//! assert_eq!(res.centroids.len(), 2);
//! ```

mod kmeans;
mod matrix;
mod oropt;
mod profits;
mod tsp;

pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use matrix::DistMatrix;
pub use oropt::{improve_tour, or_opt};
pub use profits::{solve_exact, ExactSolution, ProfitInstance};
pub use tsp::{held_karp_tour, nearest_neighbor_tour, tour_cost, two_opt};
