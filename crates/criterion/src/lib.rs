//! Workspace-local, std-only stand-in for [`criterion`].
//!
//! The wrsn workspace must build in fully offline / air-gapped
//! environments, so it vendors the slice of the criterion API its
//! benches use: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`] / `sample_size` / `finish`,
//! [`BenchmarkId`], [`Bencher::iter`] and [`black_box`].
//!
//! Measurement is deliberately simple: warm up briefly, then time
//! batches of iterations and report the median per-iteration wall time.
//! There is no statistical regression analysis, HTML report, or plotting.
//! When the bench binary runs in *test* mode (`--test`, as `cargo test
//! --benches` passes) each benchmark executes exactly one iteration, so
//! CI smoke runs stay fast.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver created by [`criterion_main!`].
pub struct Criterion {
    /// Quick mode: one iteration per bench, no timing report.
    test_mode: bool,
    /// Substring filters from the command line; empty runs everything.
    filters: Vec<String>,
    /// Target number of timed samples per bench.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filters: Vec::new(),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments, accepting the flags
    /// cargo's bench/test harness protocol passes.
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Flags cargo or users pass that we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                other if other.starts_with('-') => {}
                filter => c.filters.push(filter.to_string()),
            }
        }
        c
    }

    fn enabled(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.enabled(name) {
            let mut b = Bencher {
                test_mode: self.test_mode,
                sample_size: self.sample_size,
                median: None,
            };
            f(&mut b);
            b.report(name);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Prints the closing line of a run (no-op in test mode).
    pub fn final_summary(&self) {
        if !self.test_mode {
            println!("benchmarks complete");
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` with `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        if self.criterion.enabled(&name) {
            let mut b = Bencher {
                test_mode: self.criterion.test_mode,
                sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
                median: None,
            };
            f(&mut b, input);
            b.report(&name);
        }
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if self.criterion.enabled(&full) {
            let mut b = Bencher {
                test_mode: self.criterion.test_mode,
                sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
                median: None,
            };
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures; handed to every benchmark function.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, running it enough times for a stable median. In test
    /// mode `f` runs exactly once and nothing is timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: how many iterations fit in ~2 ms?
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        // Sample.
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                start.elapsed() / iters_per_sample as u32
            })
            .collect();
        samples.sort_unstable();
        self.median = Some(samples[samples.len() / 2]);
    }

    fn report(&self, name: &str) {
        match self.median {
            Some(median) => println!("{name:<48} {:>12.3?}/iter", median),
            None if self.test_mode => {}
            None => println!("{name:<48} (no measurement — Bencher::iter never called)"),
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_in_test_mode() {
        let mut calls = 0usize;
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            median: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.median.is_none());
    }

    #[test]
    fn bencher_measures_when_not_in_test_mode() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            median: None,
        };
        b.iter(|| black_box(2u64).wrapping_mul(3));
        assert!(b.median.is_some());
    }

    #[test]
    fn benchmark_ids_render_like_paths() {
        assert_eq!(BenchmarkId::new("tsp", 12).to_string(), "tsp/12");
        assert_eq!(BenchmarkId::from_parameter("N500").to_string(), "N500");
    }

    #[test]
    fn filters_match_substrings() {
        let c = Criterion {
            filters: vec!["grid".into()],
            ..Criterion::default()
        };
        assert!(c.enabled("grid_build_500"));
        assert!(!c.enabled("dijkstra_501"));
        assert!(Criterion::default().enabled("anything"));
    }
}
