//! # wrsn-net
//!
//! Network substrate for the `wrsn` workspace.
//!
//! The paper's sensors report data to the base station in multi-hops over
//! paths "calculated using Dijkstra's shortest path algorithm" (§V). This
//! crate provides:
//!
//! * [`CommGraph`] — the unit-disk communication graph induced by sensor
//!   positions and the communication range `d_c` (paper: 12 m), stored in a
//!   compact CSR layout.
//! * [`shortest_paths`] / [`bellman_ford`] — single-source shortest path
//!   trees (Bellman-Ford doubles as the property-test oracle).
//! * [`RoutingTree`] — per-node next hops toward a sink (the base station)
//!   plus reachability.
//! * [`relay_loads`] — per-node average transmit/receive packet rates given
//!   each node's own data generation rate, used to convert routing into
//!   radio energy drain.
//! * [`DynamicRoutingTree`] — the event-incremental tree + relay loads the
//!   simulator maintains per tick (subtree repair on liveness changes,
//!   ancestor-chain load deltas on duty handovers), bitwise-equal to the
//!   naive [`RoutingTree`] + [`relay_load_counts`] pipeline by the
//!   canonical-tree argument in DESIGN.md §4f.
//!
//! ```
//! use wrsn_geom::Point2;
//! use wrsn_net::{CommGraph, RoutingTree, relay_loads};
//!
//! // A 3-node chain: bs(0) — a(1) — b(2), 10 m hops, 12 m comm range.
//! let pos = [Point2::new(0.0, 0.0), Point2::new(10.0, 0.0), Point2::new(20.0, 0.0)];
//! let g = CommGraph::build(&pos, 12.0);
//! let tree = RoutingTree::toward(&g, 0);
//! assert_eq!(tree.next_hop(2), Some(1));
//! let loads = relay_loads(&tree, &[0.0, 1.0, 1.0]);
//! assert!((loads[1].tx_pps - 2.0).abs() < 1e-12); // relays b's packets
//! ```

mod graph;
mod routing;
mod shortest_path;
mod stats;
mod traffic;

pub use graph::CommGraph;
pub use routing::{DynamicRoutingTree, RoutingTree};
pub use shortest_path::{bellman_ford, shortest_paths, shortest_paths_enabled, ShortestPaths};
pub use stats::{network_stats, NetworkStats};
pub use traffic::{relay_load_counts, relay_loads, TrafficLoad};
