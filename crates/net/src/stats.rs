//! Network-level statistics: the structural health report of a routing
//! tree (used by the CLI's `inspect` and by deployment studies).

use crate::{relay_loads, RoutingTree};

/// Summary statistics of a routing tree and its traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Nodes (excluding the sink) able to reach the sink.
    pub connected: usize,
    /// Nodes (excluding the sink) unable to reach the sink.
    pub disconnected: usize,
    /// Maximum hop count among connected nodes.
    pub max_hops: usize,
    /// Mean hop count among connected nodes (0 when none).
    pub mean_hops: f64,
    /// Mean shortest-path distance to the sink (m) among connected nodes.
    pub mean_path_m: f64,
    /// The node carrying the most relayed traffic and its rate (pps) —
    /// the network's energy bottleneck.
    pub busiest_relay: Option<(usize, f64)>,
    /// Total packets per second arriving at the sink.
    pub sink_rx_pps: f64,
}

/// Computes [`NetworkStats`] for a routing tree and per-node generation
/// rates (`gen_pps[v]`, packets per second; index 0 = the sink).
///
/// # Panics
/// Panics when `gen_pps.len()` differs from the tree size.
pub fn network_stats(tree: &RoutingTree, gen_pps: &[f64]) -> NetworkStats {
    assert_eq!(
        gen_pps.len(),
        tree.len(),
        "one generation rate per node required"
    );
    let sink = tree.sink();
    let mut connected = 0usize;
    let mut disconnected = 0usize;
    let mut hop_sum = 0usize;
    let mut max_hops = 0usize;
    let mut dist_sum = 0.0;
    for v in 0..tree.len() {
        if v == sink {
            continue;
        }
        if tree.connected(v) {
            connected += 1;
            let h = tree.hops(v).expect("connected node has hops");
            hop_sum += h;
            max_hops = max_hops.max(h);
            dist_sum += tree.distance(v);
        } else {
            disconnected += 1;
        }
    }
    let loads = relay_loads(tree, gen_pps);
    let busiest_relay = (0..tree.len())
        .filter(|&v| v != sink && loads[v].rx_pps > 0.0)
        .max_by(|&a, &b| loads[a].rx_pps.total_cmp(&loads[b].rx_pps))
        .map(|v| (v, loads[v].rx_pps));
    NetworkStats {
        connected,
        disconnected,
        max_hops,
        mean_hops: if connected > 0 {
            hop_sum as f64 / connected as f64
        } else {
            0.0
        },
        mean_path_m: if connected > 0 {
            dist_sum / connected as f64
        } else {
            0.0
        },
        busiest_relay,
        sink_rx_pps: loads[sink].rx_pps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommGraph;
    use wrsn_geom::Point2;

    fn chain(n: usize) -> RoutingTree {
        let pos: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 10.0, 0.0)).collect();
        RoutingTree::toward(&CommGraph::build(&pos, 12.0), 0)
    }

    #[test]
    fn chain_statistics() {
        // 0(sink) ← 1 ← 2 ← 3, all generating 1 pps.
        let t = chain(4);
        let s = network_stats(&t, &[0.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.connected, 3);
        assert_eq!(s.disconnected, 0);
        assert_eq!(s.max_hops, 3);
        assert!((s.mean_hops - 2.0).abs() < 1e-12);
        assert!((s.mean_path_m - 20.0).abs() < 1e-12);
        // Node 1 relays nodes 2 and 3: the bottleneck.
        assert_eq!(s.busiest_relay, Some((1, 2.0)));
        assert!((s.sink_rx_pps - 3.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_nodes_are_counted() {
        let pos = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(500.0, 0.0),
        ];
        let t = RoutingTree::toward(&CommGraph::build(&pos, 12.0), 0);
        let s = network_stats(&t, &[0.0, 1.0, 1.0]);
        assert_eq!(s.connected, 1);
        assert_eq!(s.disconnected, 1);
        assert!((s.sink_rx_pps - 1.0).abs() < 1e-12);
    }

    #[test]
    fn silent_network_has_no_bottleneck() {
        let t = chain(3);
        let s = network_stats(&t, &[0.0, 0.0, 0.0]);
        assert_eq!(s.busiest_relay, None);
        assert_eq!(s.sink_rx_pps, 0.0);
    }
}
