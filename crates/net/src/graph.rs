//! Unit-disk communication graph in CSR form.

use wrsn_geom::{GridIndex, Point2};

/// Undirected communication graph: nodes are radio positions, an edge links
/// every pair within the communication range `d_c`, weighted by Euclidean
/// distance.
///
/// Stored as CSR (offsets + packed neighbor/weight arrays) — compact, cache
/// friendly, and immutable after construction, which matches how the
/// simulator uses it (sensor positions never move; the graph is built once).
#[derive(Debug, Clone)]
pub struct CommGraph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    weights: Vec<f64>,
    positions: Vec<Point2>,
    comm_range: f64,
}

impl CommGraph {
    /// Builds the graph over `positions` with communication range
    /// `comm_range` (meters). Uses a uniform grid so construction is
    /// O(N · neighbors) instead of O(N²).
    ///
    /// # Panics
    /// Panics if `comm_range` is not strictly positive and finite.
    pub fn build(positions: &[Point2], comm_range: f64) -> Self {
        assert!(
            comm_range.is_finite() && comm_range > 0.0,
            "comm range must be positive, got {comm_range}"
        );
        let n = positions.len();
        let grid = GridIndex::build(positions, comm_range.max(1e-6));

        let mut adjacency: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (i, &p) in positions.iter().enumerate() {
            grid.for_each_within(p, comm_range, |j| {
                if j != i {
                    adjacency[i].push((j as u32, p.distance(positions[j])));
                }
            });
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let total: usize = adjacency.iter().map(Vec::len).sum();
        let mut neighbors = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        for mut adj in adjacency {
            adj.sort_unstable_by_key(|&(j, _)| j);
            for (j, w) in adj {
                neighbors.push(j);
                weights.push(w);
            }
            offsets.push(neighbors.len() as u32);
        }

        Self {
            offsets,
            neighbors,
            weights,
            positions: positions.to_vec(),
            comm_range,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Position of node `i`.
    #[inline]
    pub fn position(&self, i: usize) -> Point2 {
        self.positions[i]
    }

    /// All node positions.
    #[inline]
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// The communication range the graph was built with.
    #[inline]
    pub fn comm_range(&self) -> f64 {
        self.comm_range
    }

    /// Neighbors of node `i` with edge weights, sorted by neighbor index.
    #[inline]
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        self.neighbors[s..e]
            .iter()
            .zip(&self.weights[s..e])
            .map(|(&j, &w)| (j as usize, w))
    }

    /// Node degree.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Connected component id for every node (ids are arbitrary but equal
    /// within a component). Useful for diagnosing disconnected deployments.
    pub fn components(&self) -> Vec<usize> {
        let n = self.len();
        let mut comp = vec![usize::MAX; n];
        let mut stack = Vec::new();
        let mut next = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for (v, _) in self.neighbors(u) {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(n: usize, spacing: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn chain_adjacency() {
        let g = CommGraph::build(&chain(4, 10.0), 12.0);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        let n1: Vec<usize> = g.neighbors(1).map(|(j, _)| j).collect();
        assert_eq!(n1, vec![0, 2]);
        let w: Vec<f64> = g.neighbors(1).map(|(_, w)| w).collect();
        assert!(w.iter().all(|&d| (d - 10.0).abs() < 1e-12));
    }

    #[test]
    fn range_boundary_is_inclusive() {
        let pos = [
            Point2::new(0.0, 0.0),
            Point2::new(12.0, 0.0),
            Point2::new(24.1, 0.0),
        ];
        let g = CommGraph::build(&pos, 12.0);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1); // 12.1 m to node 2 exceeds range
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn components_split_correctly() {
        let mut pos = chain(3, 10.0);
        pos.extend(
            chain(2, 10.0)
                .into_iter()
                .map(|p| Point2::new(p.x + 100.0, p.y)),
        );
        let g = CommGraph::build(&pos, 12.0);
        let c = g.components();
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[3]);
    }

    #[test]
    fn empty_graph() {
        let g = CommGraph::build(&[], 12.0);
        assert!(g.is_empty());
        assert_eq!(g.components(), Vec::<usize>::new());
    }

    proptest! {
        #[test]
        fn prop_graph_is_symmetric(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..80),
            range in 1.0f64..40.0,
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let g = CommGraph::build(&pts, range);
            for i in 0..g.len() {
                for (j, w) in g.neighbors(i) {
                    let back = g.neighbors(j).find(|&(k, _)| k == i);
                    prop_assert!(back.is_some(), "edge {i}->{j} missing reverse");
                    prop_assert!((back.unwrap().1 - w).abs() < 1e-9);
                    prop_assert!(w <= range + 1e-9);
                }
            }
        }
    }
}
