//! Single-source shortest paths: Dijkstra (production) and Bellman-Ford
//! (reference oracle for property tests).

use crate::CommGraph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source shortest path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// `dist[v]` = shortest distance from the source to `v`
    /// (`f64::INFINITY` when unreachable).
    pub dist: Vec<f64>,
    /// `parent[v]` = predecessor of `v` on a shortest path from the source
    /// (`None` for the source itself and for unreachable nodes).
    pub parent: Vec<Option<usize>>,
    /// The source node.
    pub source: usize,
}

impl ShortestPaths {
    /// Whether `v` is reachable from the source.
    #[inline]
    pub fn reachable(&self, v: usize) -> bool {
        self.dist[v].is_finite()
    }

    /// Reconstructs the path source → … → `v`, or `None` if unreachable.
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        if !self.reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }
}

/// Binary-heap entry ordered by smallest `(dist, node)` first.
///
/// The node index is a deterministic tie-break: equal-distance nodes
/// settle in index order, which makes the produced *parents* (not just
/// the distances) a pure function of the graph and the enabled set — the
/// **canonical tree** property the incremental repair in
/// [`crate::DynamicRoutingTree`] relies on. With this ordering and
/// strict-`<` relaxation, `parent[v]` is always the neighbor `u`
/// minimizing `(dist[u], u != source, u)` among the achievers
/// `{u : dist[u] + w(u,v) == dist[v]}` — the source outranks
/// equal-distance nodes because it pops before their entries are even
/// pushed (relevant only for zero-weight edges, i.e. nodes coincident
/// with the source). See DESIGN.md §4f for the argument.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeapEntry {
    pub(crate) dist: f64,
    pub(crate) node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; weights are finite non-negative
        // distances. Ties broken by node index (see the struct docs).
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra's algorithm from `source` over the communication graph.
///
/// O((V + E) log V) with a binary heap; edge weights (distances) are always
/// non-negative so Dijkstra is applicable.
///
/// # Panics
/// Panics if `source` is out of bounds.
pub fn shortest_paths(graph: &CommGraph, source: usize) -> ShortestPaths {
    shortest_paths_enabled(graph, source, |_| true)
}

/// Dijkstra restricted to nodes for which `enabled` returns `true`
/// (disabled nodes — e.g. sensors with depleted batteries — can neither
/// relay nor terminate paths; they report as unreachable). The source
/// itself is always enabled.
///
/// # Panics
/// Panics if `source` is out of bounds.
pub fn shortest_paths_enabled<F: Fn(usize) -> bool>(
    graph: &CommGraph,
    source: usize,
    enabled: F,
) -> ShortestPaths {
    let n = graph.len();
    assert!(source < n, "source {source} out of bounds for {n} nodes");
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source as u32,
    });

    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        let u = node as usize;
        if d > dist[u] {
            continue; // stale entry
        }
        for (v, w) in graph.neighbors(u) {
            if !enabled(v) {
                continue;
            }
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = Some(u);
                heap.push(HeapEntry {
                    dist: nd,
                    node: v as u32,
                });
            }
        }
    }
    ShortestPaths {
        dist,
        parent,
        source,
    }
}

/// Bellman-Ford from `source`. O(V·E); kept as the independently-coded
/// oracle the property tests compare Dijkstra against.
///
/// # Panics
/// Panics if `source` is out of bounds.
pub fn bellman_ford(graph: &CommGraph, source: usize) -> ShortestPaths {
    let n = graph.len();
    assert!(source < n, "source {source} out of bounds for {n} nodes");
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    dist[source] = 0.0;
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for u in 0..n {
            if !dist[u].is_finite() {
                continue;
            }
            for (v, w) in graph.neighbors(u) {
                if dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                    parent[v] = Some(u);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    ShortestPaths {
        dist,
        parent,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wrsn_geom::Point2;

    fn grid_graph() -> CommGraph {
        // 3×3 grid with 10 m spacing, 12 m comm range: only axis-aligned
        // neighbors connect (diagonal = 14.1 m).
        let pos: Vec<Point2> = (0..9)
            .map(|i| Point2::new((i % 3) as f64 * 10.0, (i / 3) as f64 * 10.0))
            .collect();
        CommGraph::build(&pos, 12.0)
    }

    #[test]
    fn dijkstra_on_grid() {
        let g = grid_graph();
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.dist[0], 0.0);
        assert!((sp.dist[8] - 40.0).abs() < 1e-9); // manhattan path
        let path = sp.path_to(8).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&8));
        assert_eq!(path.len(), 5); // 4 hops
    }

    #[test]
    fn unreachable_nodes_report_infinity() {
        let pos = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(500.0, 0.0),
        ];
        let g = CommGraph::build(&pos, 12.0);
        let sp = shortest_paths(&g, 0);
        assert!(sp.reachable(1));
        assert!(!sp.reachable(2));
        assert!(sp.path_to(2).is_none());
    }

    #[test]
    fn path_to_source_is_trivial() {
        let g = grid_graph();
        let sp = shortest_paths(&g, 4);
        assert_eq!(sp.path_to(4).unwrap(), vec![4]);
    }

    proptest! {
        #[test]
        fn prop_dijkstra_matches_bellman_ford(
            pts in proptest::collection::vec((0.0f64..60.0, 0.0f64..60.0), 1..50),
            range in 5.0f64..30.0,
            src_sel in 0usize..50,
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let g = CommGraph::build(&pts, range);
            let src = src_sel % g.len();
            let a = shortest_paths(&g, src);
            let b = bellman_ford(&g, src);
            for v in 0..g.len() {
                match (a.dist[v].is_finite(), b.dist[v].is_finite()) {
                    (true, true) => prop_assert!((a.dist[v] - b.dist[v]).abs() < 1e-6),
                    (fa, fb) => prop_assert_eq!(fa, fb, "reachability mismatch at {}", v),
                }
            }
        }

        #[test]
        fn prop_parents_form_shortest_path_tree(
            pts in proptest::collection::vec((0.0f64..60.0, 0.0f64..60.0), 2..50),
            range in 5.0f64..30.0,
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let g = CommGraph::build(&pts, range);
            let sp = shortest_paths(&g, 0);
            for v in 0..g.len() {
                if let Some(p) = sp.parent[v] {
                    // Parent edge exists and distances are consistent.
                    let w = g.neighbors(p).find(|&(k, _)| k == v).map(|(_, w)| w);
                    prop_assert!(w.is_some());
                    prop_assert!((sp.dist[p] + w.unwrap() - sp.dist[v]).abs() < 1e-6);
                }
            }
        }
    }
}
