//! Routing tree toward the base station.

use crate::{shortest_paths_enabled, CommGraph};

/// Per-node next hops toward a sink node, derived from a shortest-path tree
/// (the paper routes data to the base station along Dijkstra paths, §V).
#[derive(Debug, Clone)]
pub struct RoutingTree {
    sink: usize,
    next_hop: Vec<Option<usize>>,
    hops: Vec<Option<usize>>,
    dist: Vec<f64>,
}

impl RoutingTree {
    /// Builds the routing tree of shortest paths toward `sink`.
    pub fn toward(graph: &CommGraph, sink: usize) -> Self {
        Self::toward_enabled(graph, sink, |_| true)
    }

    /// Like [`RoutingTree::toward`] but routing only through nodes for
    /// which `enabled` is true (depleted sensors cannot relay).
    pub fn toward_enabled<F: Fn(usize) -> bool>(
        graph: &CommGraph,
        sink: usize,
        enabled: F,
    ) -> Self {
        // Shortest paths *from* the sink equal shortest paths *to* it
        // (the graph is undirected); each node's parent in that tree is its
        // next hop toward the sink.
        let sp = shortest_paths_enabled(graph, sink, enabled);
        let n = graph.len();
        let mut hops = vec![None; n];
        hops[sink] = Some(0);
        // Nodes sorted by distance: parents resolve before children.
        let mut order: Vec<usize> = (0..n).filter(|&v| sp.reachable(v)).collect();
        order.sort_by(|&a, &b| sp.dist[a].total_cmp(&sp.dist[b]));
        for &v in &order {
            if v == sink {
                continue;
            }
            if let Some(p) = sp.parent[v] {
                hops[v] = hops[p].map(|h| h + 1);
            }
        }
        Self {
            sink,
            next_hop: sp.parent.clone(),
            hops,
            dist: sp.dist.clone(),
        }
    }

    /// The sink (base station) node.
    #[inline]
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.next_hop.len()
    }

    /// True when the tree has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next_hop.is_empty()
    }

    /// Next hop of `v` toward the sink. `None` for the sink itself and for
    /// disconnected nodes.
    #[inline]
    pub fn next_hop(&self, v: usize) -> Option<usize> {
        self.next_hop[v]
    }

    /// Hop count from `v` to the sink (0 for the sink), `None` when
    /// disconnected.
    #[inline]
    pub fn hops(&self, v: usize) -> Option<usize> {
        self.hops[v]
    }

    /// Whether `v` can deliver data to the sink.
    #[inline]
    pub fn connected(&self, v: usize) -> bool {
        v == self.sink || self.next_hop[v].is_some()
    }

    /// Shortest-path distance (meters) from `v` to the sink.
    #[inline]
    pub fn distance(&self, v: usize) -> f64 {
        self.dist[v]
    }

    /// The full route `v → … → sink`, or `None` when disconnected.
    pub fn route(&self, v: usize) -> Option<Vec<usize>> {
        if !self.connected(v) {
            return None;
        }
        let mut route = vec![v];
        let mut cur = v;
        while let Some(h) = self.next_hop[cur] {
            route.push(h);
            cur = h;
        }
        Some(route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wrsn_geom::Point2;

    fn chain(n: usize, spacing: f64) -> CommGraph {
        let pos: Vec<Point2> = (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect();
        CommGraph::build(&pos, spacing + 1.0)
    }

    #[test]
    fn chain_routes_downhill() {
        let g = chain(5, 10.0);
        let t = RoutingTree::toward(&g, 0);
        for v in 1..5 {
            assert_eq!(t.next_hop(v), Some(v - 1));
            assert_eq!(t.hops(v), Some(v));
        }
        assert_eq!(t.next_hop(0), None);
        assert_eq!(t.hops(0), Some(0));
        assert_eq!(t.route(4).unwrap(), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn dead_relay_breaks_the_chain() {
        // 0 — 1 — 2: with node 1 disabled, node 2 loses its route.
        let g = chain(3, 10.0);
        let t = RoutingTree::toward_enabled(&g, 0, |v| v != 1);
        assert!(!t.connected(1));
        assert!(!t.connected(2));
        assert!(t.connected(0));
    }

    #[test]
    fn dead_relay_forces_detour() {
        // Square: 0 — 1 — 3 and 0 — 2 — 3. Disabling 1 reroutes 3 via 2.
        let pos = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
            Point2::new(10.0, 10.0),
        ];
        let g = CommGraph::build(&pos, 11.0);
        let t = RoutingTree::toward_enabled(&g, 0, |v| v != 1);
        assert_eq!(t.next_hop(3), Some(2));
        assert_eq!(t.hops(3), Some(2));
    }

    #[test]
    fn disconnected_node_has_no_route() {
        let pos = [Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)];
        let g = CommGraph::build(&pos, 12.0);
        let t = RoutingTree::toward(&g, 0);
        assert!(!t.connected(1));
        assert!(t.route(1).is_none());
        assert!(t.hops(1).is_none());
    }

    proptest! {
        #[test]
        fn prop_routes_are_acyclic_and_terminate_at_sink(
            pts in proptest::collection::vec((0.0f64..80.0, 0.0f64..80.0), 1..60),
            range in 5.0f64..30.0,
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let g = CommGraph::build(&pts, range);
            let t = RoutingTree::toward(&g, 0);
            for v in 0..g.len() {
                if let Some(route) = t.route(v) {
                    prop_assert_eq!(*route.last().unwrap(), 0);
                    prop_assert!(route.len() <= g.len(), "cycle detected");
                    // Hop counts agree with route length.
                    prop_assert_eq!(t.hops(v).unwrap(), route.len() - 1);
                }
            }
        }
    }
}
