//! Routing trees toward the base station: the one-shot [`RoutingTree`]
//! (full Dijkstra, the differential oracle) and the event-incremental
//! [`DynamicRoutingTree`] (subtree repair on liveness changes, relay-load
//! deltas on generator changes).

use crate::shortest_path::HeapEntry;
use crate::{shortest_paths_enabled, CommGraph, TrafficLoad};
use std::collections::BinaryHeap;

/// Per-node next hops toward a sink node, derived from a shortest-path tree
/// (the paper routes data to the base station along Dijkstra paths, §V).
#[derive(Debug, Clone)]
pub struct RoutingTree {
    sink: usize,
    next_hop: Vec<Option<usize>>,
    hops: Vec<Option<usize>>,
    dist: Vec<f64>,
}

impl RoutingTree {
    /// Builds the routing tree of shortest paths toward `sink`.
    pub fn toward(graph: &CommGraph, sink: usize) -> Self {
        Self::toward_enabled(graph, sink, |_| true)
    }

    /// Like [`RoutingTree::toward`] but routing only through nodes for
    /// which `enabled` is true (depleted sensors cannot relay).
    pub fn toward_enabled<F: Fn(usize) -> bool>(
        graph: &CommGraph,
        sink: usize,
        enabled: F,
    ) -> Self {
        // Shortest paths *from* the sink equal shortest paths *to* it
        // (the graph is undirected); each node's parent in that tree is its
        // next hop toward the sink.
        let sp = shortest_paths_enabled(graph, sink, enabled);
        let n = graph.len();
        let mut hops = vec![None; n];
        hops[sink] = Some(0);
        // Nodes sorted by distance: parents resolve before children.
        let mut order: Vec<usize> = (0..n).filter(|&v| sp.reachable(v)).collect();
        order.sort_by(|&a, &b| sp.dist[a].total_cmp(&sp.dist[b]));
        for &v in &order {
            if v == sink {
                continue;
            }
            if let Some(p) = sp.parent[v] {
                hops[v] = hops[p].map(|h| h + 1);
            }
        }
        Self {
            sink,
            next_hop: sp.parent.clone(),
            hops,
            dist: sp.dist.clone(),
        }
    }

    /// The sink (base station) node.
    #[inline]
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.next_hop.len()
    }

    /// True when the tree has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next_hop.is_empty()
    }

    /// Next hop of `v` toward the sink. `None` for the sink itself and for
    /// disconnected nodes.
    #[inline]
    pub fn next_hop(&self, v: usize) -> Option<usize> {
        self.next_hop[v]
    }

    /// Hop count from `v` to the sink (0 for the sink), `None` when
    /// disconnected.
    #[inline]
    pub fn hops(&self, v: usize) -> Option<usize> {
        self.hops[v]
    }

    /// Whether `v` can deliver data to the sink.
    #[inline]
    pub fn connected(&self, v: usize) -> bool {
        v == self.sink || self.next_hop[v].is_some()
    }

    /// Shortest-path distance (meters) from `v` to the sink.
    #[inline]
    pub fn distance(&self, v: usize) -> f64 {
        self.dist[v]
    }

    /// The full route `v → … → sink`, or `None` when disconnected.
    pub fn route(&self, v: usize) -> Option<Vec<usize>> {
        if !self.connected(v) {
            return None;
        }
        let mut route = vec![v];
        let mut cur = v;
        while let Some(h) = self.next_hop[cur] {
            route.push(h);
            cur = h;
        }
        Some(route)
    }
}

const NONE: u32 = u32::MAX;

/// Event-incremental shortest-path routing tree with maintained relay
/// loads.
///
/// Semantically identical to `RoutingTree::toward_enabled` + `relay_loads`
/// recomputed from scratch, but maintained under three kinds of events:
///
/// * [`set_enabled`](Self::set_enabled) — a node dies/revives/suspends/
///   resumes. Repairs only the detached subtree (disable) or the improved
///   region (enable) instead of re-running Dijkstra over the whole graph.
/// * [`set_generator`](Self::set_generator) — a rota handover moves the
///   sensing duty. Walks the ancestor chain applying a ±1 subtree-count
///   delta instead of re-folding the whole tree's loads.
/// * [`rebuild`](Self::rebuild) — the graph itself changed (mobility):
///   full Dijkstra fallback.
///
/// **Canonical tree.** Dijkstra with heap entries ordered by
/// `(dist, node)` and strict-`<` relaxation produces a *canonical* tree:
/// `parent[v]` is the neighbor `u` minimizing `(dist[u], u != sink, u)`
/// among the *achievers* `{u : dist[u] + w(u,v) == dist[v]}`. That makes
/// the tree a pure function of (graph, enabled set) — no dependence on
/// repair history — which is what lets incremental repair promise
/// bitwise equality with a from-scratch rebuild. Repairs recompute
/// distances first, then derive parents by the achiever rule in a
/// post-pass (see DESIGN.md §4f for the proof and the fallback
/// conditions).
///
/// **Loads.** Relay loads are maintained as integer subtree generator
/// counts and materialized as `count × rate`. For dyadic rates (the
/// production `data_rate_pps = 0.25`) this is bitwise identical to the
/// historical `relay_loads` float fold; see `traffic::relay_load_counts`.
#[derive(Debug, Clone)]
pub struct DynamicRoutingTree {
    sink: usize,
    rate_pps: f64,
    enabled: Vec<bool>,
    gen: Vec<bool>,
    dist: Vec<f64>,
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    /// Subtree generator count (own generator included); 0 when
    /// disconnected.
    sc: Vec<u32>,
    loads: Vec<TrafficLoad>,
    // Deduplicated queue of nodes whose materialized load changed since
    // the last `take_load_events` drain; `load_events_all` collapses the
    // queue after a wholesale rebuild / load restore. Consumers (the
    // dispatch crossing heap) use it to re-predict drain rates for only
    // the nodes that actually changed.
    load_events: Vec<u32>,
    load_event_flag: Vec<bool>,
    load_events_all: bool,
    // Scratch buffers reused across repairs (no per-event allocation in
    // the steady state).
    heap: BinaryHeap<HeapEntry>,
    affected: Vec<u32>,
    in_affected: Vec<bool>,
    improved: Vec<bool>,
}

impl DynamicRoutingTree {
    /// An empty (all-disconnected, all-disabled) tree over `n` nodes; call
    /// [`rebuild`](Self::rebuild) to populate it.
    pub fn new(n: usize, sink: usize, rate_pps: f64) -> Self {
        assert!(sink < n, "sink {sink} out of bounds for {n} nodes");
        Self {
            sink,
            rate_pps,
            enabled: vec![false; n],
            gen: vec![false; n],
            dist: vec![f64::INFINITY; n],
            parent: vec![NONE; n],
            children: vec![Vec::new(); n],
            sc: vec![0; n],
            loads: vec![TrafficLoad::default(); n],
            load_events: Vec::new(),
            load_event_flag: vec![false; n],
            load_events_all: false,
            heap: BinaryHeap::new(),
            affected: Vec::new(),
            in_affected: vec![false; n],
            improved: vec![false; n],
        }
    }

    /// Full rebuild from scratch (the mobility fallback): one Dijkstra,
    /// then subtree counts bottom-up. The sink is always enabled.
    pub fn rebuild<E, G>(&mut self, graph: &CommGraph, enabled: E, gen: G)
    where
        E: Fn(usize) -> bool,
        G: Fn(usize) -> bool,
    {
        let n = graph.len();
        assert_eq!(n, self.enabled.len(), "graph size changed");
        for v in 0..n {
            self.enabled[v] = v == self.sink || enabled(v);
            self.gen[v] = gen(v);
            self.children[v].clear();
            self.sc[v] = 0;
        }
        let en = &self.enabled;
        let sp = shortest_paths_enabled(graph, self.sink, |v| en[v]);
        self.dist.copy_from_slice(&sp.dist);
        for v in 0..n {
            self.parent[v] = sp.parent[v].map_or(NONE, |p| p as u32);
        }
        for v in 0..n {
            let p = self.parent[v];
            if p != NONE {
                self.children[p as usize].push(v as u32);
            }
        }
        // Subtree counts bottom-up: children (strictly larger dist — the
        // canonical tree has no zero-weight edges) settle before parents.
        let mut order: Vec<u32> = (0..n as u32)
            .filter(|&v| self.dist[v as usize].is_finite())
            .collect();
        order.sort_unstable_by(|&a, &b| {
            self.dist[b as usize]
                .total_cmp(&self.dist[a as usize])
                .then_with(|| b.cmp(&a))
        });
        for &v in &order {
            let v = v as usize;
            self.sc[v] += self.gen[v] as u32;
            let p = self.parent[v];
            if p != NONE {
                self.sc[p as usize] += self.sc[v];
            }
        }
        for v in 0..n {
            self.materialize(v);
        }
        self.load_events_all = true;
    }

    /// Flips a node's sensing-duty (generator) flag, updating relay loads
    /// along its ancestor chain only. O(depth).
    pub fn set_generator(&mut self, v: usize, on: bool) {
        if self.gen[v] == on {
            return;
        }
        self.gen[v] = on;
        if self.dist[v].is_finite() {
            self.chain_add(v, if on { 1 } else { -1 });
        }
    }

    /// Flips a node's relay/liveness eligibility, repairing the routing
    /// tree incrementally. The sink cannot be disabled.
    pub fn set_enabled(&mut self, graph: &CommGraph, v: usize, on: bool) {
        assert!(v != self.sink, "cannot disable the sink");
        if self.enabled[v] == on {
            return;
        }
        if on {
            self.enable(graph, v);
        } else {
            self.disable(graph, v);
        }
    }

    /// Overwrites the materialized loads wholesale (snapshot resume: the
    /// stored loads are the last-refresh values, which a pending full
    /// rebuild will supersede — but an immediate re-save must reproduce
    /// them byte for byte).
    ///
    /// # Panics
    /// Panics when `loads.len()` differs from the tree size.
    pub fn restore_loads(&mut self, loads: &[TrafficLoad]) {
        assert_eq!(loads.len(), self.loads.len(), "loads length mismatch");
        self.loads.copy_from_slice(loads);
        self.load_events_all = true;
    }

    // ---- accessors -----------------------------------------------------

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// True when the tree has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    /// The sink (base station) node.
    #[inline]
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// The per-generator data rate the loads are materialized at.
    #[inline]
    pub fn rate_pps(&self) -> f64 {
        self.rate_pps
    }

    /// Whether `v` currently relays (enabled and routing goes through it).
    #[inline]
    pub fn enabled(&self, v: usize) -> bool {
        self.enabled[v]
    }

    /// Whether `v` currently generates traffic.
    #[inline]
    pub fn generator(&self, v: usize) -> bool {
        self.gen[v]
    }

    /// Whether `v` can deliver data to the sink.
    #[inline]
    pub fn connected(&self, v: usize) -> bool {
        self.dist[v].is_finite()
    }

    /// Shortest-path distance (meters) from `v` to the sink;
    /// `f64::INFINITY` when disconnected.
    #[inline]
    pub fn distance(&self, v: usize) -> f64 {
        self.dist[v]
    }

    /// Next hop of `v` toward the sink (`None` for the sink and for
    /// disconnected nodes).
    #[inline]
    pub fn next_hop(&self, v: usize) -> Option<usize> {
        let p = self.parent[v];
        (p != NONE).then_some(p as usize)
    }

    /// Maintained per-node relay loads (identical to `relay_loads` over
    /// the equivalent naive tree; bitwise so for dyadic rates).
    #[inline]
    pub fn loads(&self) -> &[TrafficLoad] {
        &self.loads
    }

    /// Subtree generator count of `v` (its own generator included).
    #[inline]
    pub fn subtree_generators(&self, v: usize) -> u32 {
        self.sc[v]
    }

    /// Drains the deduplicated set of nodes whose materialized load
    /// changed since the last drain, appending them to `out` (unsorted).
    /// Returns `true` when *every* node must be treated as changed (a
    /// wholesale [`rebuild`](Self::rebuild) or
    /// [`restore_loads`](Self::restore_loads) happened since the last
    /// drain) — in that case nothing is appended to `out`.
    pub fn take_load_events(&mut self, out: &mut Vec<u32>) -> bool {
        let all = self.load_events_all;
        self.load_events_all = false;
        for &v in &self.load_events {
            self.load_event_flag[v as usize] = false;
        }
        if !all {
            out.extend_from_slice(&self.load_events);
        }
        self.load_events.clear();
        all
    }

    // ---- differential oracle -------------------------------------------

    /// Checks this tree bitwise against a from-scratch canonical rebuild
    /// over its *own* enabled/generator state: distances, parents, subtree
    /// counts, children-list consistency and materialized loads must all
    /// agree exactly. Returns a description of the first divergence.
    ///
    /// This is the retained differential oracle the simulator runs every
    /// debug tick; it is valid regardless of whether the caller's dirty
    /// queues have been flushed (it checks repair correctness, not
    /// staleness).
    pub fn verify(&self, graph: &CommGraph) -> Result<(), String> {
        let n = self.len();
        assert_eq!(graph.len(), n, "graph size mismatch");
        let en = &self.enabled;
        let sp = shortest_paths_enabled(graph, self.sink, |v| en[v]);
        let mut sc_ref = vec![0u32; n];
        let mut order: Vec<usize> = (0..n).filter(|&v| sp.dist[v].is_finite()).collect();
        order.sort_unstable_by(|&a, &b| sp.dist[b].total_cmp(&sp.dist[a]).then_with(|| b.cmp(&a)));
        for &v in &order {
            sc_ref[v] += self.gen[v] as u32;
            if let Some(p) = sp.parent[v] {
                sc_ref[p] += sc_ref[v];
            }
        }
        #[allow(clippy::needless_range_loop)] // indexes five parallel columns
        for v in 0..n {
            if self.dist[v].to_bits() != sp.dist[v].to_bits() {
                return Err(format!(
                    "dist[{v}]: incremental {} vs oracle {}",
                    self.dist[v], sp.dist[v]
                ));
            }
            let p_ref = sp.parent[v].map_or(NONE, |p| p as u32);
            if self.parent[v] != p_ref {
                return Err(format!(
                    "parent[{v}]: incremental {:?} vs oracle {:?}",
                    self.next_hop(v),
                    sp.parent[v]
                ));
            }
            if self.sc[v] != sc_ref[v] {
                return Err(format!(
                    "subtree count[{v}]: incremental {} vs oracle {}",
                    self.sc[v], sc_ref[v]
                ));
            }
            let l_ref = self.load_for(v, sc_ref[v], sp.dist[v].is_finite());
            if self.loads[v] != l_ref {
                return Err(format!(
                    "loads[{v}]: incremental {:?} vs oracle {:?}",
                    self.loads[v], l_ref
                ));
            }
            for &c in &self.children[v] {
                if self.parent[c as usize] != v as u32 {
                    return Err(format!("children[{v}] lists {c} whose parent differs"));
                }
            }
        }
        let child_edges: usize = self.children.iter().map(|c| c.len()).sum();
        let parent_edges = (0..n).filter(|&v| self.parent[v] != NONE).count();
        if child_edges != parent_edges {
            return Err(format!(
                "children lists hold {child_edges} edges but {parent_edges} parents are set"
            ));
        }
        Ok(())
    }

    // ---- internals -----------------------------------------------------

    fn load_for(&self, v: usize, sc: u32, connected: bool) -> TrafficLoad {
        if !connected {
            return TrafficLoad::default();
        }
        let rx = (sc - self.gen[v] as u32) as f64 * self.rate_pps;
        TrafficLoad {
            tx_pps: if v == self.sink {
                0.0
            } else {
                sc as f64 * self.rate_pps
            },
            rx_pps: rx,
        }
    }

    fn materialize(&mut self, v: usize) {
        let new = self.load_for(v, self.sc[v], self.dist[v].is_finite());
        self.set_load(v, new);
    }

    /// Stores a new materialized load, recording a load event when the
    /// value actually changed. The comparison is bitwise-safe: every
    /// materialized load is a non-negative product (never `-0.0`), so
    /// value equality implies bit equality.
    fn set_load(&mut self, v: usize, new: TrafficLoad) {
        if self.loads[v] != new {
            self.loads[v] = new;
            if !self.load_events_all && !self.load_event_flag[v] {
                self.load_event_flag[v] = true;
                self.load_events.push(v as u32);
            }
        }
    }

    /// Applies `delta` to the subtree counts of `from` and every ancestor
    /// up to the sink, re-materializing loads along the chain.
    fn chain_add(&mut self, from: usize, delta: i64) {
        if delta == 0 {
            return;
        }
        let mut v = from;
        loop {
            self.sc[v] = (self.sc[v] as i64 + delta) as u32;
            self.materialize(v);
            let p = self.parent[v];
            if p == NONE {
                break;
            }
            v = p as usize;
        }
    }

    fn remove_child(&mut self, p: usize, c: usize) {
        let pos = self.children[p]
            .iter()
            .position(|&x| x == c as u32)
            .expect("child missing from parent's list");
        self.children[p].swap_remove(pos);
    }

    /// Cuts the tree edge above `u` (if any), propagating the subtree
    /// count removal up the old ancestor chain.
    fn detach(&mut self, u: usize) {
        let p = self.parent[u];
        if p == NONE {
            return;
        }
        self.parent[u] = NONE;
        self.remove_child(p as usize, u);
        self.chain_add(p as usize, -(self.sc[u] as i64));
    }

    /// Best current offer to `u` from enabled, connected neighbors.
    fn seed_offer(&self, graph: &CommGraph, u: usize) -> f64 {
        let mut best = f64::INFINITY;
        for (w, wt) in graph.neighbors(u) {
            if self.enabled[w] && self.dist[w].is_finite() {
                let nd = self.dist[w] + wt;
                if nd < best {
                    best = nd;
                }
            }
        }
        best
    }

    fn mark_affected(&mut self, u: usize) {
        if !self.in_affected[u] {
            self.in_affected[u] = true;
            self.affected.push(u as u32);
        }
    }

    fn enable(&mut self, graph: &CommGraph, v: usize) {
        self.enabled[v] = true;
        debug_assert!(
            !self.dist[v].is_finite() && self.parent[v] == NONE && self.children[v].is_empty(),
            "disabled node must be disconnected"
        );
        let offer = self.seed_offer(graph, v);
        if !offer.is_finite() {
            return; // still unreachable; cannot help anyone else either
        }
        self.affected.clear();
        self.heap.clear();
        self.heap.push(HeapEntry {
            dist: offer,
            node: v as u32,
        });
        self.run_repair(graph);
    }

    fn disable(&mut self, graph: &CommGraph, v: usize) {
        self.enabled[v] = false;
        if !self.dist[v].is_finite() {
            return; // was not part of the tree
        }
        // Collect the subtree S rooted at v (breadth-first into `affected`,
        // which doubles as the traversal queue).
        self.affected.clear();
        self.affected.push(v as u32);
        self.in_affected[v] = true;
        let mut i = 0;
        while i < self.affected.len() {
            let u = self.affected[i] as usize;
            i += 1;
            for ci in 0..self.children[u].len() {
                let c = self.children[u][ci];
                self.affected.push(c);
                self.in_affected[c as usize] = true;
            }
        }
        // Cut S off at its root, then reset every member to the
        // disconnected state. Nodes outside S keep exact distances and
        // canonical parents: removal only lengthens paths, and any
        // alternative shortest path for an outside node avoids S (its
        // canonical parent chain does — otherwise it would be *in* S).
        self.detach(v);
        for i in 0..self.affected.len() {
            let u = self.affected[i] as usize;
            self.dist[u] = f64::INFINITY;
            self.parent[u] = NONE;
            self.children[u].clear();
            self.sc[u] = 0;
            self.set_load(u, TrafficLoad::default());
        }
        // Re-seed the enabled members of S from the (untouched) boundary
        // and re-run Dijkstra restricted to the improved region.
        self.heap.clear();
        for i in 0..self.affected.len() {
            let u = self.affected[i] as usize;
            if !self.enabled[u] {
                continue;
            }
            let offer = self.seed_offer(graph, u);
            if offer.is_finite() {
                self.heap.push(HeapEntry {
                    dist: offer,
                    node: u as u32,
                });
            }
        }
        self.run_repair(graph);
    }

    /// Shared repair engine. On entry `heap` holds seed offers and
    /// `affected`/`in_affected` the nodes already known to need attention
    /// (all of them reset to disconnected state by `disable`; empty for
    /// `enable`).
    ///
    /// Phase A settles distances: a standard lazy-deletion Dijkstra whose
    /// pops strictly improve `dist`. The first improvement of a
    /// still-connected node eagerly cuts its old tree edge (its subtree
    /// riding along, counts intact); a disconnected node starts a fresh
    /// subtree of its own generator count. Exact equal-distance offers to
    /// unimproved nodes are recorded too — their distance is final but
    /// their *canonical parent* may now be a smaller-key achiever.
    ///
    /// Phase B re-derives canonical parents for every affected node by
    /// scanning its neighbors for the minimum-key achiever, applying
    /// reparents in increasing `(dist, node)` order so that a parent is
    /// always attached (its ancestor chain complete) before any of its
    /// children, keeping the chain-walk count updates exact.
    fn run_repair(&mut self, graph: &CommGraph) {
        while let Some(HeapEntry { dist: d, node }) = self.heap.pop() {
            let u = node as usize;
            if self.dist[u].is_finite() && d >= self.dist[u] {
                continue; // settled
            }
            self.mark_affected(u);
            if !self.improved[u] {
                self.improved[u] = true;
                if self.dist[u].is_finite() {
                    // First improvement of a connected node: take its
                    // subtree out of the old ancestor chain. Descendants
                    // that improve later subtract from a chain that now
                    // stops here — their counts were already removed from
                    // the older ancestors as part of ours.
                    self.detach(u);
                } else {
                    // Reconnecting: no children yet, counts start at the
                    // node's own generator bit.
                    self.sc[u] = self.gen[u] as u32;
                }
            }
            self.dist[u] = d;
            for (x, wt) in graph.neighbors(u) {
                if !self.enabled[x] {
                    continue;
                }
                let nd = d + wt;
                if !self.dist[x].is_finite() || nd < self.dist[x] {
                    self.heap.push(HeapEntry {
                        dist: nd,
                        node: x as u32,
                    });
                } else if nd == self.dist[x] {
                    // Distance unchanged, but `u`'s key may beat x's
                    // current parent's: recheck canonically in phase B.
                    self.mark_affected(x);
                }
            }
        }

        // Phase B: canonical parents, smallest (dist, node) first.
        self.affected.sort_unstable_by(|&a, &b| {
            self.dist[a as usize]
                .total_cmp(&self.dist[b as usize])
                .then_with(|| a.cmp(&b))
        });
        for i in 0..self.affected.len() {
            let u = self.affected[i] as usize;
            if self.dist[u].is_finite() && u != self.sink {
                let du = self.dist[u];
                let mut best = NONE;
                let mut best_dist = f64::INFINITY;
                for (w, wt) in graph.neighbors(u) {
                    if !self.enabled[w] || !self.dist[w].is_finite() {
                        continue;
                    }
                    if self.dist[w] + wt != du {
                        continue; // not an achiever
                    }
                    // Achiever with the minimum (dist, node≠sink, node)
                    // key: the sink precedes equal-distance nodes (it pops
                    // first in the reference Dijkstra — the only place
                    // push timing, not the heap key, decides pop order);
                    // otherwise neighbors iterate in index order, so
                    // keeping the first strict improvement selects the
                    // lowest index among equal distances.
                    let replace = match self.dist[w].total_cmp(&best_dist) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => w == self.sink,
                        std::cmp::Ordering::Greater => false,
                    };
                    if replace {
                        best = w as u32;
                        best_dist = self.dist[w];
                    }
                }
                debug_assert!(best != NONE, "connected node must have an achiever");
                if best != self.parent[u] {
                    self.detach(u);
                    self.parent[u] = best;
                    self.children[best as usize].push(u as u32);
                    self.chain_add(best as usize, self.sc[u] as i64);
                }
            }
            self.materialize(u);
        }
        for i in 0..self.affected.len() {
            let u = self.affected[i] as usize;
            self.in_affected[u] = false;
            self.improved[u] = false;
        }
        self.affected.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wrsn_geom::Point2;

    fn chain(n: usize, spacing: f64) -> CommGraph {
        let pos: Vec<Point2> = (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect();
        CommGraph::build(&pos, spacing + 1.0)
    }

    #[test]
    fn chain_routes_downhill() {
        let g = chain(5, 10.0);
        let t = RoutingTree::toward(&g, 0);
        for v in 1..5 {
            assert_eq!(t.next_hop(v), Some(v - 1));
            assert_eq!(t.hops(v), Some(v));
        }
        assert_eq!(t.next_hop(0), None);
        assert_eq!(t.hops(0), Some(0));
        assert_eq!(t.route(4).unwrap(), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn dead_relay_breaks_the_chain() {
        // 0 — 1 — 2: with node 1 disabled, node 2 loses its route.
        let g = chain(3, 10.0);
        let t = RoutingTree::toward_enabled(&g, 0, |v| v != 1);
        assert!(!t.connected(1));
        assert!(!t.connected(2));
        assert!(t.connected(0));
    }

    #[test]
    fn dead_relay_forces_detour() {
        // Square: 0 — 1 — 3 and 0 — 2 — 3. Disabling 1 reroutes 3 via 2.
        let pos = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
            Point2::new(10.0, 10.0),
        ];
        let g = CommGraph::build(&pos, 11.0);
        let t = RoutingTree::toward_enabled(&g, 0, |v| v != 1);
        assert_eq!(t.next_hop(3), Some(2));
        assert_eq!(t.hops(3), Some(2));
    }

    #[test]
    fn disconnected_node_has_no_route() {
        let pos = [Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)];
        let g = CommGraph::build(&pos, 12.0);
        let t = RoutingTree::toward(&g, 0);
        assert!(!t.connected(1));
        assert!(t.route(1).is_none());
        assert!(t.hops(1).is_none());
    }

    /// Naive reference state: tree + count-loads recomputed from scratch.
    fn oracle(
        g: &CommGraph,
        sink: usize,
        enabled: &[bool],
        gen: &[bool],
        rate: f64,
    ) -> (RoutingTree, Vec<TrafficLoad>) {
        let t = RoutingTree::toward_enabled(g, sink, |v| v == sink || enabled[v]);
        let loads = crate::relay_load_counts(&t, gen, rate);
        (t, loads)
    }

    /// Full equivalence check: incremental state ≡ from-scratch naive
    /// rebuild, bitwise.
    fn assert_matches_oracle(dyn_t: &DynamicRoutingTree, g: &CommGraph, ctx: &str) {
        dyn_t.verify(g).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        let enabled: Vec<bool> = (0..g.len()).map(|v| dyn_t.enabled(v)).collect();
        let gen: Vec<bool> = (0..g.len()).map(|v| dyn_t.generator(v)).collect();
        let (t, loads) = oracle(g, dyn_t.sink(), &enabled, &gen, dyn_t.rate_pps());
        #[allow(clippy::needless_range_loop)] // compares parallel columns
        for v in 0..g.len() {
            assert_eq!(
                dyn_t.connected(v),
                t.connected(v),
                "{ctx}: connectivity of {v}"
            );
            assert_eq!(
                dyn_t.distance(v).to_bits(),
                t.distance(v).to_bits(),
                "{ctx}: dist of {v}"
            );
            assert_eq!(dyn_t.next_hop(v), t.next_hop(v), "{ctx}: parent of {v}");
            assert_eq!(dyn_t.loads()[v], loads[v], "{ctx}: loads of {v}");
        }
    }

    #[test]
    fn incremental_chain_break_and_heal() {
        let g = chain(5, 10.0);
        let mut t = DynamicRoutingTree::new(5, 0, 0.25);
        t.rebuild(&g, |_| true, |v| v != 0);
        assert_matches_oracle(&t, &g, "fresh");
        assert_eq!(t.subtree_generators(0), 4);

        // Kill the middle relay: 3 and 4 lose their route.
        t.set_enabled(&g, 2, false);
        assert!(!t.connected(2) && !t.connected(3) && !t.connected(4));
        assert_matches_oracle(&t, &g, "after break");

        // Revive it: everyone reconnects with exact loads.
        t.set_enabled(&g, 2, true);
        assert!(t.connected(4));
        assert_matches_oracle(&t, &g, "after heal");
        assert_eq!(t.subtree_generators(0), 4);
    }

    #[test]
    fn incremental_detour_reroute() {
        // Square: disabling 1 must reroute 3 via 2, and re-enabling must
        // restore the canonical (lower-index) parent.
        let pos = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
            Point2::new(10.0, 10.0),
        ];
        let g = CommGraph::build(&pos, 11.0);
        let mut t = DynamicRoutingTree::new(4, 0, 0.25);
        t.rebuild(&g, |_| true, |v| v != 0);
        assert_eq!(t.next_hop(3), Some(1), "canonical tie-break: lower index");
        t.set_enabled(&g, 1, false);
        assert_eq!(t.next_hop(3), Some(2));
        assert_matches_oracle(&t, &g, "detour");
        t.set_enabled(&g, 1, true);
        assert_eq!(t.next_hop(3), Some(1), "equal-dist reparent on revival");
        assert_matches_oracle(&t, &g, "restored");
    }

    #[test]
    fn generator_handover_walks_the_chain() {
        let g = chain(4, 10.0);
        let mut t = DynamicRoutingTree::new(4, 0, 0.25);
        t.rebuild(&g, |_| true, |v| v == 3);
        assert_eq!(t.loads()[1].tx_pps, 0.25);
        // Rota handover: duty moves 3 → 2.
        t.set_generator(3, false);
        t.set_generator(2, true);
        assert_eq!(t.loads()[3].tx_pps, 0.0);
        assert_eq!(t.loads()[1].rx_pps, 0.25);
        assert_matches_oracle(&t, &g, "handover");
    }

    #[test]
    fn coincident_with_sink_parents_to_sink() {
        // Two nodes exactly on top of the sink plus one off to the side:
        // the zero-distance clique must parent to the sink (it pops first),
        // not to each other, whatever the indices say.
        let pos = [
            Point2::new(5.0, 5.0),
            Point2::new(5.0, 5.0),
            Point2::new(5.0, 5.0),
            Point2::new(13.0, 5.0),
        ];
        let g = CommGraph::build(&pos, 10.0);
        for sink in 0..3 {
            let mut t = DynamicRoutingTree::new(4, sink, 0.25);
            t.rebuild(&g, |_| true, |v| v != sink);
            assert_matches_oracle(&t, &g, "coincident fresh");
            for v in 0..3 {
                if v != sink {
                    assert_eq!(t.next_hop(v), Some(sink), "clique member {v}");
                }
            }
            // Churn the outside node and a clique member through
            // disable/enable; repairs must preserve the sink-first rule.
            for &v in &[3usize, (sink + 1) % 3] {
                t.set_enabled(&g, v, false);
                assert_matches_oracle(&t, &g, "coincident after disable");
                t.set_enabled(&g, v, true);
                assert_matches_oracle(&t, &g, "coincident after enable");
            }
        }
    }

    #[test]
    fn noop_events_change_nothing() {
        let g = chain(3, 10.0);
        let mut t = DynamicRoutingTree::new(3, 0, 0.25);
        t.rebuild(&g, |_| true, |v| v != 0);
        t.set_enabled(&g, 1, true); // already enabled
        t.set_generator(1, true); // already a generator
        assert_matches_oracle(&t, &g, "noop");
    }

    proptest! {
        /// The crate-level incrementality contract: any sequence of
        /// enable/disable/generator events on any geometry (coincident
        /// points included via snapped coordinates) leaves the dynamic
        /// tree bitwise-equal to a from-scratch rebuild.
        #[test]
        fn prop_incremental_equals_naive_under_event_sequences(
            pts in proptest::collection::vec((0u8..16, 0u8..16), 2..40),
            events in proptest::collection::vec((0u8..4, 0usize..40), 1..60),
            range_sel in 1u8..5,
        ) {
            // Snap positions to a coarse grid so coincident nodes and
            // exact distance ties actually occur.
            let pts: Vec<Point2> = pts
                .into_iter()
                .map(|(x, y)| Point2::new(x as f64 * 5.0, y as f64 * 5.0))
                .collect();
            let g = CommGraph::build(&pts, range_sel as f64 * 5.0 + 1.0);
            let n = g.len();
            let mut t = DynamicRoutingTree::new(n, 0, 0.25);
            t.rebuild(&g, |_| true, |v| v != 0);
            for (step, &(kind, raw)) in events.iter().enumerate() {
                let v = 1 + raw % (n.max(2) - 1); // never the sink
                match kind {
                    0 => t.set_enabled(&g, v, false),
                    1 => t.set_enabled(&g, v, true),
                    2 => t.set_generator(v, false),
                    _ => t.set_generator(v, true),
                }
                t.verify(&g).map_err(|e| {
                    TestCaseError(format!("step {step} (kind {kind}, node {v}): {e}"))
                })?;
            }
            // Final deep check against the naive pipeline.
            let enabled: Vec<bool> = (0..n).map(|v| t.enabled(v)).collect();
            let gen: Vec<bool> = (0..n).map(|v| t.generator(v)).collect();
            let (naive, loads) = oracle(&g, 0, &enabled, &gen, 0.25);
            #[allow(clippy::needless_range_loop)] // compares parallel columns
            for v in 0..n {
                prop_assert_eq!(t.next_hop(v), naive.next_hop(v), "parent of {}", v);
                prop_assert_eq!(t.distance(v).to_bits(), naive.distance(v).to_bits());
                prop_assert_eq!(t.loads()[v], loads[v], "loads of {}", v);
            }
        }

        #[test]
        fn prop_routes_are_acyclic_and_terminate_at_sink(
            pts in proptest::collection::vec((0.0f64..80.0, 0.0f64..80.0), 1..60),
            range in 5.0f64..30.0,
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let g = CommGraph::build(&pts, range);
            let t = RoutingTree::toward(&g, 0);
            for v in 0..g.len() {
                if let Some(route) = t.route(v) {
                    prop_assert_eq!(*route.last().unwrap(), 0);
                    prop_assert!(route.len() <= g.len(), "cycle detected");
                    // Hop counts agree with route length.
                    prop_assert_eq!(t.hops(v).unwrap(), route.len() - 1);
                }
            }
        }
    }
}
