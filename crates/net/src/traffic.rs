//! Relay traffic loads: how much each node transmits and receives.

use crate::RoutingTree;

/// Average packet rates of one node (packets per second).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficLoad {
    /// Packets per second the node transmits (its own data + relayed).
    pub tx_pps: f64,
    /// Packets per second the node receives (relayed from children).
    pub rx_pps: f64,
}

/// Computes per-node traffic loads from each node's own data generation rate
/// (`gen_pps`, packets per second) and the routing tree.
///
/// Every connected node transmits its own packets plus everything it relays;
/// it receives the transmissions of its children in the routing tree. The
/// sink receives everything but transmits nothing. Disconnected nodes have
/// no route, so they neither transmit nor receive (their radio stays idle).
///
/// # Panics
/// Panics when `gen_pps.len()` differs from the tree size or any rate is
/// negative/non-finite.
pub fn relay_loads(tree: &RoutingTree, gen_pps: &[f64]) -> Vec<TrafficLoad> {
    assert_eq!(
        gen_pps.len(),
        tree.len(),
        "one generation rate per node required"
    );
    assert!(
        gen_pps.iter().all(|r| r.is_finite() && *r >= 0.0),
        "generation rates must be non-negative"
    );
    let n = tree.len();
    let mut loads = vec![TrafficLoad::default(); n];

    // Process nodes deepest-first so children accumulate into parents.
    let mut order: Vec<usize> = (0..n).filter(|&v| tree.connected(v)).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(tree.hops(v).unwrap_or(0)));

    let mut subtree = gen_pps.to_vec(); // own + descendants, for connected nodes
    for &v in &order {
        if v == tree.sink() {
            continue;
        }
        loads[v].tx_pps = subtree[v];
        if let Some(p) = tree.next_hop(v) {
            subtree[p] += subtree[v];
            loads[p].rx_pps += subtree[v];
        }
    }
    // The sink does not forward upward; leave its tx at 0.
    loads[tree.sink()].tx_pps = 0.0;
    // Disconnected nodes keep the default 0/0.
    for (v, load) in loads.iter_mut().enumerate() {
        if !tree.connected(v) {
            *load = TrafficLoad::default();
        }
    }
    loads
}

/// Count-based form of [`relay_loads`] for the common case where every
/// generator produces at the *same* rate: loads are materialized as
/// `subtree_generator_count × rate_pps` products instead of a float fold.
///
/// For dyadic rates (mantissa-exact multiples of a power of two, like the
/// production `data_rate_pps = 15/60 = 0.25`) every partial sum in the
/// [`relay_loads`] fold is exact, so the product form is **bitwise
/// identical** to it; for non-dyadic rates the historical fold is
/// tree-shape-dependent in the last ulps and the product form is the
/// better-defined of the two. This is the reference the incremental
/// `DynamicRoutingTree` loads are compared against.
///
/// # Panics
/// Panics when `gen.len()` differs from the tree size or `rate_pps` is
/// negative/non-finite.
pub fn relay_load_counts(tree: &RoutingTree, gen: &[bool], rate_pps: f64) -> Vec<TrafficLoad> {
    assert_eq!(
        gen.len(),
        tree.len(),
        "one generator flag per node required"
    );
    assert!(
        rate_pps.is_finite() && rate_pps >= 0.0,
        "rate must be non-negative"
    );
    let n = tree.len();
    let mut counts = vec![0u32; n];
    let mut order: Vec<usize> = (0..n).filter(|&v| tree.connected(v)).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(tree.hops(v).unwrap_or(0)));
    for &v in &order {
        counts[v] += gen[v] as u32;
        if let Some(p) = tree.next_hop(v) {
            counts[p] += counts[v];
        }
    }
    let mut loads = vec![TrafficLoad::default(); n];
    for v in 0..n {
        if !tree.connected(v) {
            continue;
        }
        loads[v] = TrafficLoad {
            tx_pps: if v == tree.sink() {
                0.0
            } else {
                counts[v] as f64 * rate_pps
            },
            rx_pps: (counts[v] - gen[v] as u32) as f64 * rate_pps,
        };
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommGraph, RoutingTree};
    use proptest::prelude::*;
    use wrsn_geom::Point2;

    fn chain_tree(n: usize) -> RoutingTree {
        let pos: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 10.0, 0.0)).collect();
        RoutingTree::toward(&CommGraph::build(&pos, 12.0), 0)
    }

    #[test]
    fn chain_accumulates_toward_sink() {
        // 0(sink) ← 1 ← 2 ← 3, each generating 1 pps.
        let t = chain_tree(4);
        let loads = relay_loads(&t, &[0.0, 1.0, 1.0, 1.0]);
        assert!((loads[3].tx_pps - 1.0).abs() < 1e-12);
        assert!((loads[2].tx_pps - 2.0).abs() < 1e-12);
        assert!((loads[2].rx_pps - 1.0).abs() < 1e-12);
        assert!((loads[1].tx_pps - 3.0).abs() < 1e-12);
        assert!((loads[1].rx_pps - 2.0).abs() < 1e-12);
        assert_eq!(loads[0].tx_pps, 0.0);
        assert!((loads[0].rx_pps - 3.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_nodes_stay_silent() {
        let pos = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(500.0, 0.0),
        ];
        let t = RoutingTree::toward(&CommGraph::build(&pos, 12.0), 0);
        let loads = relay_loads(&t, &[0.0, 2.0, 5.0]);
        assert!((loads[1].tx_pps - 2.0).abs() < 1e-12);
        assert_eq!(loads[2], TrafficLoad::default());
    }

    proptest! {
        #[test]
        fn prop_counts_bitwise_equal_fold_at_dyadic_rate(
            pts in proptest::collection::vec((0.0f64..80.0, 0.0f64..80.0), 1..60),
            gens in proptest::collection::vec(proptest::bool::ANY, 60),
            range in 5.0f64..30.0,
        ) {
            // The production rate 15/60 = 0.25 is dyadic: k·0.25 summed in
            // any order is exact, so the count-product form must match the
            // historical fold bit for bit (this equality is what lets the
            // incremental tree's loads stand in for `relay_loads` in the
            // byte-identity pins).
            let rate = 15.0 / 60.0;
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let g = CommGraph::build(&pts, range);
            let t = RoutingTree::toward(&g, 0);
            let gen_flags: Vec<bool> = (0..g.len()).map(|i| gens[i]).collect();
            let gen_pps: Vec<f64> = gen_flags.iter().map(|&b| if b { rate } else { 0.0 }).collect();
            let fold = relay_loads(&t, &gen_pps);
            let prod = relay_load_counts(&t, &gen_flags, rate);
            for v in 0..g.len() {
                prop_assert!(
                    fold[v].tx_pps.to_bits() == prod[v].tx_pps.to_bits()
                        && fold[v].rx_pps.to_bits() == prod[v].rx_pps.to_bits(),
                    "node {}: fold {:?} vs product {:?}", v, fold[v], prod[v]
                );
            }
        }

        #[test]
        fn prop_traffic_conservation(
            pts in proptest::collection::vec((0.0f64..80.0, 0.0f64..80.0), 1..60),
            rates in proptest::collection::vec(0.0f64..5.0, 60),
            range in 5.0f64..30.0,
        ) {
            let pts: Vec<Point2> = pts.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let g = CommGraph::build(&pts, range);
            let t = RoutingTree::toward(&g, 0);
            let gen: Vec<f64> = (0..g.len()).map(|i| rates[i]).collect();
            let loads = relay_loads(&t, &gen);

            // The sink receives exactly the sum of generation rates of all
            // connected non-sink nodes.
            let expected: f64 = (1..g.len()).filter(|&v| t.connected(v)).map(|v| gen[v]).sum();
            prop_assert!((loads[0].rx_pps - expected).abs() < 1e-6);

            // Per-node conservation: tx = own + rx (for connected non-sink).
            for v in 1..g.len() {
                if t.connected(v) {
                    prop_assert!((loads[v].tx_pps - gen[v] - loads[v].rx_pps).abs() < 1e-6);
                }
            }
        }
    }
}
