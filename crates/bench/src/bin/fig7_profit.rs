//! Fig. 7(a)–(b) — recharge profit of the recharging schemes across the
//! ERP sweep: (a) total energy recharged into the network, (b) the Eq. (2)
//! objective score (recharged energy minus RV traveling energy).
//!
//! Paper shapes: recharged energy declines as ERP grows (fewer, later
//! requests); the Combined-Scheme recharges the most and achieves the
//! highest objective; the Partition-Scheme overtakes greedy at large ERP.
//!
//! ```sh
//! cargo run --release -p wrsn-bench --bin fig7_profit [-- --quick]
//! ```
//!
//! Scales onto the fault-tolerant sharded sweep fabric with `--shards N`
//! (plus `--journal`, `--resume`, `--chaos-workers`; DESIGN.md §4g).

use wrsn_bench::{erp_sweep, run_sweep, ExpOptions, GridPoint};
use wrsn_core::SchedulerKind;
use wrsn_metrics::{write_csv, Table};

fn main() {
    let opts = ExpOptions::from_args();
    let sweep = erp_sweep();
    let mut grid = Vec::new();
    for &scheduler in &SchedulerKind::EVALUATED {
        for &k in &sweep {
            let mut cfg = opts.base_config();
            cfg.scheduler = scheduler;
            cfg.activity.round_robin = true;
            cfg.activity.erp = Some(k);
            grid.push(GridPoint {
                label: format!("{scheduler}|{k:.1}"),
                config: cfg,
            });
        }
    }
    eprintln!(
        "fig7: {} runs × {} seed(s), {} days each…",
        grid.len(),
        opts.seeds,
        opts.days
    );
    let results = run_sweep(grid, &opts);

    type Panel = (
        &'static str,
        &'static str,
        fn(&wrsn_metrics::EvalReport) -> f64,
    );
    let panels: [Panel; 2] = [
        ("a", "total energy recharged (MJ)", |r| r.recharged_mj),
        ("b", "objective score, Eq. 2 (MJ)", |r| r.objective_mj),
    ];

    let mut header: Vec<String> = vec!["scheme".into()];
    header.extend(sweep.iter().map(|k| format!("K={k:.1}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    for (panel, title, metric) in panels {
        let mut table = Table::new(&format!("Fig. 7({panel}) — {title} vs. ERP"), &header_refs);
        for (si, scheduler) in SchedulerKind::EVALUATED.iter().enumerate() {
            let row: Vec<f64> = (0..sweep.len())
                .map(|ki| metric(&results[si * sweep.len() + ki].report))
                .collect();
            table.row_f64(scheduler.label(), &row, 2);
        }
        print!("{}", table.render());
        println!();
        let path = opts.out_dir.join(format!("fig7{panel}.csv"));
        write_csv(&table, &path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
    println!("paper shapes: (a) recharged ↓ in ERP, Combined highest;");
    println!("(b) Combined highest objective; Partition overtakes Greedy at large ERP.");
}
