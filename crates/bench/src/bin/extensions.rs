//! Extension experiment (beyond the paper): the paper's three schemes
//! against two schedulers from the wider literature —
//!
//! * **Clarke–Wright savings**, the classical capacitated-VRP construction
//!   heuristic, and
//! * a **deadline-aware** variant in the spirit of the paper's battery-
//!   deadline reference \[10\] —
//!
//! on the identical Table II workload at the paper's ERP operating point.
//!
//! ```sh
//! cargo run --release -p wrsn-bench --bin extensions [-- --quick]
//! ```
//!
//! Scales onto the fault-tolerant sharded sweep fabric with `--shards N`
//! (plus `--journal`, `--resume`, `--chaos-workers`; DESIGN.md §4g).

use wrsn_bench::{run_sweep, ExpOptions, GridPoint};
use wrsn_core::SchedulerKind;
use wrsn_metrics::{write_csv, Table};

fn main() {
    let opts = ExpOptions::from_args();
    let schedulers = [
        SchedulerKind::Greedy,
        SchedulerKind::Partition,
        SchedulerKind::Combined,
        SchedulerKind::Savings,
        SchedulerKind::Deadline,
    ];
    let grid: Vec<GridPoint> = schedulers
        .iter()
        .map(|&s| {
            let mut cfg = opts.base_config();
            cfg.scheduler = s;
            GridPoint {
                label: s.label().to_string(),
                config: cfg,
            }
        })
        .collect();
    eprintln!(
        "extensions: {} runs × {} seed(s), {} days each…",
        grid.len(),
        opts.seeds,
        opts.days
    );
    let results = run_sweep(grid, &opts);

    let mut table = Table::new(
        "Extension — paper schemes vs. classical schedulers (K = 0.6)",
        &[
            "scheduler",
            "travel MJ",
            "recharged MJ",
            "objective MJ",
            "coverage %",
            "dead %",
        ],
    );
    for r in &results {
        table.row_f64(
            &r.label,
            &[
                r.report.travel_energy_mj,
                r.report.recharged_mj,
                r.report.objective_mj,
                r.report.coverage_ratio_pct,
                r.report.nonfunctional_pct,
            ],
            3,
        );
    }
    print!("{}", table.render());

    let path = opts.out_dir.join("extensions.csv");
    write_csv(&table, &path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
