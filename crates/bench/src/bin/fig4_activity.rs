//! Fig. 4 — impact of sensor activity management on RV moving cost.
//!
//! Reproduces the paper's bar chart: total RV traveling energy for the four
//! activity-management cases {No ERC, With ERC} × {Full time, Round Robin}
//! under each of the three recharge scheduling algorithms. The paper's
//! headline: "With ERC – with RR" is cheapest everywhere and activity
//! management saves ≈16 % of traveling energy.
//!
//! ```sh
//! cargo run --release -p wrsn-bench --bin fig4_activity            # paper scale
//! cargo run --release -p wrsn-bench --bin fig4_activity -- --quick # smoke run
//! ```
//!
//! Scales onto the fault-tolerant sharded sweep fabric with `--shards N`
//! (plus `--journal`, `--resume`, `--chaos-workers`; DESIGN.md §4g).

use wrsn_bench::{run_sweep, ExpOptions, GridPoint};
use wrsn_core::SchedulerKind;
use wrsn_metrics::{write_csv, Table};
use wrsn_sim::ActivityConfig;

fn main() {
    let opts = ExpOptions::from_args();
    let cases: [(&str, ActivityConfig); 4] = [
        (
            "No ERC - Full time",
            ActivityConfig {
                round_robin: false,
                erp: None,
            },
        ),
        (
            "No ERC - With RR",
            ActivityConfig {
                round_robin: true,
                erp: None,
            },
        ),
        (
            "With ERC - Full time",
            ActivityConfig {
                round_robin: false,
                erp: Some(0.6),
            },
        ),
        (
            "With ERC - With RR",
            ActivityConfig {
                round_robin: true,
                erp: Some(0.6),
            },
        ),
    ];

    let mut grid = Vec::new();
    for scheduler in SchedulerKind::EVALUATED {
        for (name, activity) in cases {
            let mut cfg = opts.base_config();
            cfg.scheduler = scheduler;
            cfg.activity = activity;
            grid.push(GridPoint {
                label: format!("{scheduler}|{name}"),
                config: cfg,
            });
        }
    }
    eprintln!(
        "fig4: {} runs × {} seed(s), {} days each…",
        grid.len(),
        opts.seeds,
        opts.days
    );
    let results = run_sweep(grid, &opts);

    let mut table = Table::new(
        "Fig. 4 — RV traveling energy (MJ) by activity management case",
        &[
            "scheduler",
            "No ERC/Full",
            "No ERC/RR",
            "ERC/Full",
            "ERC/RR",
            "saving %",
        ],
    );
    for (si, scheduler) in SchedulerKind::EVALUATED.iter().enumerate() {
        let row: Vec<f64> = (0..4)
            .map(|c| results[si * 4 + c].report.travel_energy_mj)
            .collect();
        let saving = 100.0 * (1.0 - row[3] / row[0]);
        table.row_f64(
            scheduler.label(),
            &[row[0], row[1], row[2], row[3], saving],
            3,
        );
    }
    print!("{}", table.render());
    println!("\npaper shape: 'With ERC - With RR' lowest in every column; management saves ≈16 %.");

    let path = opts.out_dir.join("fig4_activity.csv");
    write_csv(&table, &path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
