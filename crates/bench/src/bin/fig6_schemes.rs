//! Fig. 6(a)–(d) — performance comparison of the recharging schemes across
//! the ERP sweep: (a) RV traveling energy, (b) average target coverage
//! ratio, (c) average percentage of nonfunctional sensors, (d) recharging
//! cost (travel distance per operational sensor).
//!
//! Paper shapes: greedy travels the most and the insertion-based schemes
//! the least (a, d); coverage dips and nonfunctional sensors rise as ERP
//! grows (b, c); the Combined-Scheme keeps the fewest sensors dead.
//!
//! ```sh
//! cargo run --release -p wrsn-bench --bin fig6_schemes [-- --quick]
//! ```
//!
//! Scales onto the fault-tolerant sharded sweep fabric with `--shards N`
//! (plus `--journal`, `--resume`, `--chaos-workers`; DESIGN.md §4g).

use wrsn_bench::{erp_sweep, run_sweep, ExpOptions, GridPoint};
use wrsn_core::SchedulerKind;
use wrsn_metrics::{write_csv, Table};

fn main() {
    let opts = ExpOptions::from_args();
    let sweep = erp_sweep();
    let mut grid = Vec::new();
    for &scheduler in &SchedulerKind::EVALUATED {
        for &k in &sweep {
            let mut cfg = opts.base_config();
            cfg.scheduler = scheduler;
            cfg.activity.round_robin = true;
            cfg.activity.erp = Some(k);
            grid.push(GridPoint {
                label: format!("{scheduler}|{k:.1}"),
                config: cfg,
            });
        }
    }
    eprintln!(
        "fig6: {} runs × {} seed(s), {} days each…",
        grid.len(),
        opts.seeds,
        opts.days
    );
    let results = run_sweep(grid, &opts);

    type Panel = (
        &'static str,
        &'static str,
        fn(&wrsn_metrics::EvalReport) -> f64,
    );
    let panels: [Panel; 4] = [
        ("a", "RV traveling energy (MJ)", |r| r.travel_energy_mj),
        ("b", "average coverage ratio (%)", |r| r.coverage_ratio_pct),
        ("c", "nonfunctional sensors (%)", |r| r.nonfunctional_pct),
        ("d", "recharging cost (m/sensor)", |r| {
            r.recharging_cost_m_per_sensor
        }),
    ];

    let mut header: Vec<String> = vec!["scheme".into()];
    header.extend(sweep.iter().map(|k| format!("K={k:.1}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    for (panel, title, metric) in panels {
        let mut table = Table::new(&format!("Fig. 6({panel}) — {title} vs. ERP"), &header_refs);
        for (si, scheduler) in SchedulerKind::EVALUATED.iter().enumerate() {
            let row: Vec<f64> = (0..sweep.len())
                .map(|ki| metric(&results[si * sweep.len() + ki].report))
                .collect();
            table.row_f64(scheduler.label(), &row, 2);
        }
        print!("{}", table.render());
        println!();
        let path = opts.out_dir.join(format!("fig6{panel}.csv"));
        write_csv(&table, &path).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
    println!("paper shapes: (a,d) Greedy ≫ insertion schemes, declining in ERP;");
    println!("(b) coverage high but declining in ERP; (c) nonfunctional rising in ERP.");
}
