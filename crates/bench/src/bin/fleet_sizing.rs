//! Extension experiment: fleet sizing. The paper fixes m = 3 RVs; a
//! deployment engineer's first question is how performance scales with the
//! fleet — including the **no-recharging baseline** (m = 0) that motivates
//! WRSNs in the first place. Sweeps the RV count under the Combined-Scheme
//! at the paper's operating point and reports the §V metrics plus each
//! fleet's charging utilization.
//!
//! ```sh
//! cargo run --release -p wrsn-bench --bin fleet_sizing [-- --quick]
//! ```
//!
//! Supports the shared sweep flags (`--journal`, `--resume`, `--shards`,
//! `--chaos-workers`, …) like the figure binaries.

use wrsn_bench::{run_jobs, ExpOptions};
use wrsn_core::SchedulerKind;
use wrsn_metrics::{write_csv, Table};
use wrsn_sim::batch::JobSpec;

fn main() {
    let opts = ExpOptions::from_args();
    let fleet_sizes = [0usize, 1, 2, 3, 4, 6];
    let jobs: Vec<JobSpec> = fleet_sizes
        .iter()
        .map(|&m| {
            let mut cfg = opts.base_config();
            cfg.scheduler = SchedulerKind::Combined;
            cfg.num_rvs = m;
            JobSpec {
                label: format!("fleet/m={m}"),
                config: cfg,
                seed: 0,
            }
        })
        .collect();
    let outcomes = run_jobs(&jobs, &opts);

    let mut table = Table::new(
        "Fleet sizing — Combined-Scheme, Table II workload",
        &[
            "fleet",
            "travel MJ",
            "recharged MJ",
            "coverage %",
            "dead %",
            "cost m/sensor",
            "util %",
        ],
    );
    for (&m, outcome) in fleet_sizes.iter().zip(&outcomes) {
        let out = match outcome {
            Ok(out) => out,
            Err(panic) => {
                eprintln!("m={m} failed: {}", panic.message);
                continue;
            }
        };
        let cost = out.report.recharging_cost_m_per_sensor;
        table.row_f64(
            &format!("{m} RVs"),
            &[
                out.report.travel_energy_mj,
                out.report.recharged_mj,
                out.report.coverage_ratio_pct,
                out.report.nonfunctional_pct,
                if cost.is_finite() { cost } else { -1.0 },
                out.rv_charging_utilization * 100.0,
            ],
            3,
        );
    }
    print!("{}", table.render());
    println!("\nexpected shape: zero RVs lose the dense-duty sensors within weeks (the paper's");
    println!("motivation); returns diminish once fleet delivery capacity exceeds network drain.");

    let path = opts.out_dir.join("fleet_sizing.csv");
    write_csv(&table, &path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
