//! Ablation study over the engineering choices DESIGN.md calls out —
//! pieces the paper leaves unspecified, measured so their influence on the
//! reproduced figures is explicit:
//!
//! * **dispatch batching** (60 kJ minimum batch) vs. plan-on-arrival;
//! * **Ni-MH charge-rate taper** vs. an ideal constant-power charger;
//! * **round-robin slot length** (10 min default vs. 2 min / 60 min);
//! * **ERP operating point** (the paper's K = 0.6) vs. no ERC.
//!
//! ```sh
//! cargo run --release -p wrsn-bench --bin ablation [-- --quick]
//! ```
//!
//! Scales onto the fault-tolerant sharded sweep fabric with `--shards N`
//! (plus `--journal`, `--resume`, `--chaos-workers`; DESIGN.md §4g).

use wrsn_bench::{run_sweep, ExpOptions, GridPoint};
use wrsn_core::SchedulerKind;
use wrsn_energy::ChargeModel;
use wrsn_metrics::{write_csv, Table};

fn main() {
    let opts = ExpOptions::from_args();
    let base = || {
        let mut cfg = opts.base_config();
        cfg.scheduler = SchedulerKind::Combined;
        cfg
    };

    let mut grid = Vec::new();
    grid.push(GridPoint {
        label: "baseline (all defaults)".into(),
        config: base(),
    });

    let mut cfg = base();
    cfg.min_batch_demand_j = 0.0;
    grid.push(GridPoint {
        label: "no dispatch batching".into(),
        config: cfg,
    });

    let mut cfg = base();
    cfg.charge_model = ChargeModel::ideal();
    grid.push(GridPoint {
        label: "ideal charger (no taper)".into(),
        config: cfg,
    });

    let mut cfg = base();
    cfg.slot_s = 120.0;
    grid.push(GridPoint {
        label: "2-minute RR slots".into(),
        config: cfg,
    });

    let mut cfg = base();
    cfg.slot_s = 3_600.0;
    grid.push(GridPoint {
        label: "60-minute RR slots".into(),
        config: cfg,
    });

    let mut cfg = base();
    cfg.activity.erp = None;
    grid.push(GridPoint {
        label: "no ERC (immediate requests)".into(),
        config: cfg,
    });

    eprintln!(
        "ablation: {} runs × {} seed(s), {} days each…",
        grid.len(),
        opts.seeds,
        opts.days
    );
    let results = run_sweep(grid, &opts);

    let mut table = Table::new(
        "Ablation — Combined-Scheme, paper workload",
        &[
            "variant",
            "travel MJ",
            "recharged MJ",
            "objective MJ",
            "coverage %",
            "dead %",
        ],
    );
    for r in &results {
        table.row_f64(
            &r.label,
            &[
                r.report.travel_energy_mj,
                r.report.recharged_mj,
                r.report.objective_mj,
                r.report.coverage_ratio_pct,
                r.report.nonfunctional_pct,
            ],
            3,
        );
    }
    print!("{}", table.render());

    let path = opts.out_dir.join("ablation.csv");
    write_csv(&table, &path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
