//! Fig. 5 — trade-off between energy efficiency and network performance.
//!
//! Sweeps the Energy Request Percentage (ERP) from 0 to 1 under the greedy
//! scheduler (the paper's example) and reports RV traveling energy next to
//! the target missing rate. Paper shape: traveling energy declines with
//! ERP; the missing rate stays ≈0 until ERP ≈ 0.6 and then climbs.
//!
//! ```sh
//! cargo run --release -p wrsn-bench --bin fig5_tradeoff [-- --quick]
//! ```
//!
//! Scales onto the fault-tolerant sharded sweep fabric with `--shards N`
//! (plus `--journal`, `--resume`, `--chaos-workers`; DESIGN.md §4g).

use wrsn_bench::{erp_sweep, run_sweep, ExpOptions, GridPoint};
use wrsn_core::SchedulerKind;
use wrsn_metrics::{write_csv, Table};

fn main() {
    let opts = ExpOptions::from_args();
    let grid: Vec<GridPoint> = erp_sweep()
        .into_iter()
        .map(|k| {
            let mut cfg = opts.base_config();
            cfg.scheduler = SchedulerKind::Greedy;
            cfg.activity.round_robin = true;
            cfg.activity.erp = Some(k);
            GridPoint {
                label: format!("{k:.1}"),
                config: cfg,
            }
        })
        .collect();
    eprintln!(
        "fig5: {} runs × {} seed(s), {} days each…",
        grid.len(),
        opts.seeds,
        opts.days
    );
    let results = run_sweep(grid, &opts);

    let mut table = Table::new(
        "Fig. 5 — greedy scheduler: traveling energy vs. target missing rate",
        &["ERP", "travel MJ", "missing %", "nonfunctional %"],
    );
    for r in &results {
        table.row_f64(
            &r.label,
            &[
                r.report.travel_energy_mj,
                r.report.missing_rate_pct,
                r.report.nonfunctional_pct,
            ],
            3,
        );
    }
    print!("{}", table.render());
    println!("\npaper shape: travel monotonically ↓ in ERP; missing ≈0 until ERP≈0.6, then ↑.");

    let path = opts.out_dir.join("fig5_tradeoff.csv");
    write_csv(&table, &path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
