//! Robustness study (beyond the paper): how the JRSSAM framework holds up
//! when the §II modeling assumptions are perturbed —
//!
//! * deployment: uniform random (paper) vs. grid / hex / jittered lattices;
//! * target mobility: periodic teleport (paper) vs. continuous
//!   random-waypoint motion vs. static targets;
//! * battery self-discharge (real Ni-MH cells leak ~0.5–1 %/day);
//! * permanent hardware failures.
//!
//! All runs use the Combined-Scheme at the paper's operating point.
//!
//! ```sh
//! cargo run --release -p wrsn-bench --bin robustness [-- --quick]
//! ```
//!
//! Scales onto the fault-tolerant sharded sweep fabric with `--shards N`
//! (plus `--journal`, `--resume`, `--chaos-workers`; DESIGN.md §4g).

use wrsn_bench::{run_sweep, ExpOptions, GridPoint};
use wrsn_core::SchedulerKind;
use wrsn_geom::Deployment;
use wrsn_metrics::{write_csv, Table};
use wrsn_sim::TargetMobility;

fn main() {
    let opts = ExpOptions::from_args();
    let base = || {
        let mut cfg = opts.base_config();
        cfg.scheduler = SchedulerKind::Combined;
        cfg
    };

    let mut grid = Vec::new();
    grid.push(GridPoint {
        label: "baseline (paper model)".into(),
        config: base(),
    });

    for (name, d) in [
        ("grid deployment", Deployment::Grid),
        ("hex deployment", Deployment::Hex),
        ("jittered deployment", Deployment::Jittered),
    ] {
        let mut cfg = base();
        cfg.deployment = d;
        grid.push(GridPoint {
            label: name.into(),
            config: cfg,
        });
    }

    let mut cfg = base();
    cfg.target_mobility = TargetMobility::RandomWaypoint { speed_mps: 0.3 };
    grid.push(GridPoint {
        label: "waypoint targets (0.3 m/s)".into(),
        config: cfg,
    });

    let mut cfg = base();
    cfg.target_mobility = TargetMobility::Static;
    grid.push(GridPoint {
        label: "static targets".into(),
        config: cfg,
    });

    let mut cfg = base();
    cfg.self_discharge_per_day = 0.01;
    grid.push(GridPoint {
        label: "1%/day self-discharge".into(),
        config: cfg,
    });

    let mut cfg = base();
    cfg.permanent_failures_per_day = 0.001;
    grid.push(GridPoint {
        label: "0.1%/day hardware faults".into(),
        config: cfg,
    });

    eprintln!(
        "robustness: {} runs × {} seed(s), {} days each…",
        grid.len(),
        opts.seeds,
        opts.days
    );
    let results = run_sweep(grid, &opts);

    let mut table = Table::new(
        "Robustness — Combined-Scheme under perturbed assumptions",
        &[
            "variant",
            "travel MJ",
            "recharged MJ",
            "coverage %",
            "dead %",
            "services",
        ],
    );
    for r in &results {
        table.row_f64(
            &r.label,
            &[
                r.report.travel_energy_mj,
                r.report.recharged_mj,
                r.report.coverage_ratio_pct,
                r.report.nonfunctional_pct,
                r.report.recharge_visits as f64,
            ],
            2,
        );
    }
    print!("{}", table.render());

    let path = opts.out_dir.join("robustness.csv");
    write_csv(&table, &path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
