//! Shared experiment harness for the figure-regeneration binaries.
//!
//! Every `fig*` binary in `src/bin/` sweeps a parameter grid of 120-day
//! simulations at the paper's Table II scale, prints the figure's series as
//! an aligned table, and writes CSV under `results/`. Runs in a sweep are
//! independent, so they fan out over worker threads via the deterministic
//! [`wrsn_sim::batch`] driver (std-only: `std::thread::scope` + a shared
//! claim counter — results come back in job order regardless of thread
//! interleaving).
//!
//! Common CLI flags (parsed by [`ExpOptions::from_args`]):
//!
//! * `--quick` — quarter-scale network and 12 simulated days, for smoke
//!   runs and CI (≈ seconds instead of minutes);
//! * `--days N` — override the simulated duration;
//! * `--seeds N` — average every grid point over `N` seeds (default 1,
//!   the paper's single-run style).

use std::path::PathBuf;
use wrsn_metrics::{EvalReport, Summary};
use wrsn_sim::{batch, SimConfig};

/// Options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Simulated days per run.
    pub days: f64,
    /// Seeds averaged per grid point.
    pub seeds: u64,
    /// Quarter-scale quick mode.
    pub quick: bool,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            days: 120.0,
            seeds: 1,
            quick: false,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExpOptions {
    /// Parses `--quick`, `--days N`, `--seeds N`, `--out DIR` from argv.
    ///
    /// # Panics
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.days = 12.0;
                }
                "--days" => {
                    let v = args.next().expect("--days needs a value");
                    opts.days = v.parse().expect("--days must be a number");
                }
                "--seeds" => {
                    let v = args.next().expect("--seeds needs a value");
                    opts.seeds = v.parse().expect("--seeds must be an integer");
                }
                "--out" => {
                    opts.out_dir = PathBuf::from(args.next().expect("--out needs a value"));
                }
                other => {
                    panic!("unknown flag {other}; supported: --quick --days N --seeds N --out DIR")
                }
            }
        }
        opts
    }

    /// The base configuration for this experiment scale.
    pub fn base_config(&self) -> SimConfig {
        let mut cfg = if self.quick {
            SimConfig::small(self.days)
        } else {
            SimConfig::paper_defaults()
        };
        if self.quick {
            cfg.min_batch_demand_j = 20e3;
        }
        cfg.duration_s = self.days * 86_400.0;
        cfg.duration_days = self.days;
        cfg
    }
}

/// A single grid point: a label and a ready-to-run configuration.
pub struct GridPoint {
    /// Row label in the output table.
    pub label: String,
    /// The configuration to simulate.
    pub config: SimConfig,
}

/// Mean report across seeds for one grid point.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// The grid point's label.
    pub label: String,
    /// Mean of each metric over the seeds that completed.
    pub report: EvalReport,
    /// Standard deviation of the travel-energy metric (0 for one seed) —
    /// a cheap stability indicator for the sweep tables.
    pub travel_std_mj: f64,
    /// Seeds whose run panicked (empty on a clean sweep). The mean above
    /// covers the surviving seeds only; a point where *every* seed failed
    /// reports a zeroed mean.
    pub failed_seeds: Vec<u64>,
}

/// Runs every `(grid point, seed)` pair across worker threads and averages
/// per point. Order of the results matches the input grid, and — because
/// the batch driver returns outcomes in job order — every per-point seed
/// sequence is identical whatever the worker count.
///
/// The sweep is crash-isolated: a panicking run (bad parameter point) is
/// reported on stderr and in [`GridResult::failed_seeds`] while every
/// other run completes normally.
pub fn run_grid(grid: Vec<GridPoint>, seeds: u64) -> Vec<GridResult> {
    let jobs: Vec<(SimConfig, u64)> = grid
        .iter()
        .flat_map(|point| (0..seeds).map(|s| (point.config.clone(), s)))
        .collect();
    let workers = batch::default_workers(jobs.len());
    let outcomes = batch::run_batch_fallible(&jobs, workers, None);

    grid.into_iter()
        .zip(outcomes.chunks(seeds.max(1) as usize))
        .map(|(point, chunk)| {
            let mut rs: Vec<EvalReport> = Vec::new();
            let mut failed_seeds = Vec::new();
            for (seed, outcome) in chunk.iter().enumerate() {
                match outcome {
                    Ok(o) => rs.push(o.report),
                    Err(e) => {
                        failed_seeds.push(seed as u64);
                        eprintln!(
                            "warning: grid point '{}' seed {seed} failed: {}",
                            point.label, e.message
                        );
                    }
                }
            }
            let mean = mean_report(&rs);
            let travel: Vec<f64> = rs.iter().map(|r| r.travel_energy_mj).collect();
            let travel_std_mj = Summary::of(&travel).map(|s| s.std_dev).unwrap_or(0.0);
            GridResult {
                label: point.label,
                report: mean,
                travel_std_mj,
                failed_seeds,
            }
        })
        .collect()
}

fn mean_report(rs: &[EvalReport]) -> EvalReport {
    let n = rs.len().max(1) as f64;
    let avg = |f: fn(&EvalReport) -> f64| rs.iter().map(f).sum::<f64>() / n;
    EvalReport {
        travel_distance_m: avg(|r| r.travel_distance_m),
        travel_energy_mj: avg(|r| r.travel_energy_mj),
        recharged_mj: avg(|r| r.recharged_mj),
        objective_mj: avg(|r| r.objective_mj),
        coverage_ratio_pct: avg(|r| r.coverage_ratio_pct),
        missing_rate_pct: avg(|r| r.missing_rate_pct),
        nonfunctional_pct: avg(|r| r.nonfunctional_pct),
        recharging_cost_m_per_sensor: avg(|r| r.recharging_cost_m_per_sensor),
        recharge_visits: (rs.iter().map(|r| r.recharge_visits).sum::<u64>() as f64 / n) as u64,
    }
}

/// The ERP sweep the paper's Figs. 5–7 use on their x axes.
pub fn erp_sweep() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_core::SchedulerKind;

    #[test]
    fn grid_runs_in_parallel_and_keeps_order() {
        let mk = |label: &str, seed_days: f64| {
            let mut cfg = SimConfig::small(seed_days);
            cfg.num_sensors = 40;
            cfg.num_targets = 2;
            cfg.scheduler = SchedulerKind::Greedy;
            GridPoint {
                label: label.to_string(),
                config: cfg,
            }
        };
        let results = run_grid(vec![mk("a", 0.2), mk("b", 0.2)], 2);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "a");
        assert_eq!(results[1].label, "b");
        assert!(results[0].report.coverage_ratio_pct >= 0.0);
        assert!(results.iter().all(|r| r.failed_seeds.is_empty()));
    }

    #[test]
    fn bad_grid_point_does_not_kill_the_sweep() {
        let mut good = SimConfig::small(0.1);
        good.num_sensors = 40;
        good.num_targets = 2;
        let mut bad = good.clone();
        bad.tick_s = f64::NAN; // rejected by SimConfig::validate
        let results = run_grid(
            vec![
                GridPoint {
                    label: "good".into(),
                    config: good,
                },
                GridPoint {
                    label: "bad".into(),
                    config: bad,
                },
            ],
            2,
        );
        assert_eq!(results.len(), 2, "the sweep must finish");
        assert!(results[0].failed_seeds.is_empty());
        assert!(results[0].report.travel_distance_m >= 0.0);
        assert_eq!(results[1].failed_seeds, vec![0, 1]);
    }

    #[test]
    fn erp_sweep_covers_unit_interval() {
        let s = erp_sweep();
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[10], 1.0);
    }

    #[test]
    fn quick_mode_shrinks_the_network() {
        let opts = ExpOptions {
            quick: true,
            days: 5.0,
            ..Default::default()
        };
        let cfg = opts.base_config();
        assert!(cfg.num_sensors < 500);
        assert_eq!(cfg.duration_days, 5.0);
    }
}
