//! Shared experiment harness for the figure-regeneration binaries.
//!
//! Every `fig*` binary in `src/bin/` sweeps a parameter grid of 120-day
//! simulations at the paper's Table II scale, prints the figure's series as
//! an aligned table, and writes CSV under `results/`. Runs in a sweep are
//! independent, so they fan out over worker threads via the deterministic
//! [`wrsn_sim::batch`] driver (std-only: `std::thread::scope` + a shared
//! claim counter — results come back in job order regardless of thread
//! interleaving).
//!
//! Common CLI flags (parsed by [`ExpOptions::from_args`]):
//!
//! * `--quick` — quarter-scale network and 12 simulated days, for smoke
//!   runs and CI (≈ seconds instead of minutes);
//! * `--days N` — override the simulated duration;
//! * `--seeds N` — average every grid point over `N` seeds (default 1,
//!   the paper's single-run style);
//! * `--journal DIR` — keep a write-ahead run journal in `DIR` so a
//!   killed sweep can be resumed with `--resume` (completed grid points
//!   are skipped, in-flight ones rerun);
//! * `--timeout-s S` / `--retries N` — supervise every run with a
//!   wall-clock watchdog and bounded retries; a run that exhausts its
//!   attempts lands in [`GridResult::failed_seeds`] instead of aborting
//!   the sweep;
//! * `--shards N` — run the sweep on the fault-tolerant sharded fabric
//!   (DESIGN.md §4g): the grid is split into `N` ranges, each executed by
//!   a supervised worker *process* with its own write-ahead journal, and
//!   the per-shard journals are merged byte-stably. Crashed, hung or
//!   `kill -9`'d workers are re-queued and resume; the merged CSV is
//!   byte-identical to a single-process run's. Tune with
//!   `--shard-inflight N` (backpressure bound on live workers),
//!   `--shard-retries N`, `--lease-timeout-s S` (hung-worker detection)
//!   and `--chaos-workers P` (self-chaos: randomly kill/stall workers to
//!   exercise recovery);
//! * `--agents HOST:PORT,..` — distribute the shards over `wrsn agent`
//!   daemons instead of local worker processes (DESIGN.md §4i); implies
//!   one shard per agent when `--shards` is unset. Unreachable or
//!   refusing agents degrade to local execution with a warning; links
//!   that die mid-shard requeue and resume. `--chaos-net P` injects
//!   deterministic network faults (torn frames, partitions, severed
//!   agents) to exercise that path;
//! * `--store DIR` / `--store-snap-every N` — record every run into the
//!   event-sourced run store under `DIR` (per-job directories keyed by
//!   the journal's grid hash), so any historical tick can later be
//!   re-materialized with `wrsn replay` and mined with `wrsn query`.

use std::path::PathBuf;
use std::time::Duration;
use wrsn_metrics::{EvalReport, Summary};
use wrsn_sim::batch::{JobPanic, JobSpec, SupervisorOptions};
use wrsn_sim::journal::Journal;
use wrsn_sim::shard::{run_sharded, ShardOptions};
use wrsn_sim::{batch, SimConfig, SimOutcome};

/// Options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Simulated days per run.
    pub days: f64,
    /// Seeds averaged per grid point.
    pub seeds: u64,
    /// Quarter-scale quick mode.
    pub quick: bool,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Directory for the write-ahead run journal (`--journal DIR`).
    pub journal_dir: Option<PathBuf>,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Per-attempt wall-clock timeout in seconds (`--timeout-s`).
    pub timeout_s: Option<f64>,
    /// Extra attempts after a panic or timeout (`--retries`).
    pub retries: u32,
    /// Shard count for the sharded sweep fabric (`--shards`; 0 = run
    /// in-process without the fabric).
    pub shards: usize,
    /// Backpressure bound on concurrently live worker processes
    /// (`--shard-inflight`; 0 = min(shards, cores)).
    pub shard_inflight: usize,
    /// Worker-process respawns after a shard's first attempt fails
    /// (`--shard-retries`).
    pub shard_retries: u32,
    /// Hung-worker detection: lease staleness before a worker is killed
    /// and its shard re-queued (`--lease-timeout-s`).
    pub lease_timeout_s: f64,
    /// Self-chaos probability: randomly SIGKILL/stall spawned workers
    /// (`--chaos-workers`).
    pub chaos_workers: f64,
    /// `wrsn agent` addresses to distribute shards over
    /// (`--agents host:port,host:port`). Empty = local worker processes.
    /// Implies a sharded sweep: if `--shards` is unset, one shard per
    /// agent.
    pub agents: Vec<String>,
    /// Network-chaos probability for agent assignments (`--chaos-net`):
    /// torn frames, delays, one-way partitions, stalled/severed agents.
    pub chaos_net: f64,
    /// Root directory for the event-sourced run store (`--store DIR`):
    /// every executed run is recorded for time-travel replay and cross-run
    /// queries (`wrsn replay` / `wrsn query`). `None` disables recording.
    pub store_dir: Option<PathBuf>,
    /// Snapshot-chain interval in ticks for recorded runs
    /// (`--store-snap-every N`).
    pub store_snap_every: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            days: 120.0,
            seeds: 1,
            quick: false,
            out_dir: PathBuf::from("results"),
            journal_dir: None,
            resume: false,
            timeout_s: None,
            retries: 1,
            shards: 0,
            shard_inflight: 0,
            shard_retries: 3,
            lease_timeout_s: 30.0,
            chaos_workers: 0.0,
            agents: Vec::new(),
            chaos_net: 0.0,
            store_dir: None,
            store_snap_every: wrsn_sim::store::RecordOptions::default().snap_every,
        }
    }
}

impl ExpOptions {
    /// Parses `--quick`, `--days N`, `--seeds N`, `--out DIR`,
    /// `--journal DIR`, `--resume`, `--timeout-s S`, `--retries N` from
    /// argv.
    ///
    /// # Panics
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.days = 12.0;
                }
                "--days" => {
                    let v = args.next().expect("--days needs a value");
                    opts.days = v.parse().expect("--days must be a number");
                }
                "--seeds" => {
                    let v = args.next().expect("--seeds needs a value");
                    opts.seeds = v.parse().expect("--seeds must be an integer");
                }
                "--out" => {
                    opts.out_dir = PathBuf::from(args.next().expect("--out needs a value"));
                }
                "--journal" => {
                    opts.journal_dir = Some(PathBuf::from(
                        args.next().expect("--journal needs a directory"),
                    ));
                }
                "--resume" => opts.resume = true,
                "--timeout-s" => {
                    let v = args.next().expect("--timeout-s needs a value");
                    opts.timeout_s = Some(v.parse().expect("--timeout-s must be a number"));
                }
                "--retries" => {
                    let v = args.next().expect("--retries needs a value");
                    opts.retries = v.parse().expect("--retries must be an integer");
                }
                "--shards" => {
                    let v = args.next().expect("--shards needs a value");
                    opts.shards = v.parse().expect("--shards must be an integer");
                }
                "--shard-inflight" => {
                    let v = args.next().expect("--shard-inflight needs a value");
                    opts.shard_inflight = v.parse().expect("--shard-inflight must be an integer");
                }
                "--shard-retries" => {
                    let v = args.next().expect("--shard-retries needs a value");
                    opts.shard_retries = v.parse().expect("--shard-retries must be an integer");
                }
                "--lease-timeout-s" => {
                    let v = args.next().expect("--lease-timeout-s needs a value");
                    opts.lease_timeout_s = v.parse().expect("--lease-timeout-s must be a number");
                }
                "--chaos-workers" => {
                    let v = args.next().expect("--chaos-workers needs a value");
                    opts.chaos_workers = v.parse().expect("--chaos-workers must be a number");
                }
                "--agents" => {
                    let v = args
                        .next()
                        .expect("--agents needs host:port[,host:port...]");
                    opts.agents = v
                        .split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(String::from)
                        .collect();
                }
                "--chaos-net" => {
                    let v = args.next().expect("--chaos-net needs a value");
                    opts.chaos_net = v.parse().expect("--chaos-net must be a number");
                }
                "--store" => {
                    opts.store_dir = Some(PathBuf::from(
                        args.next().expect("--store needs a directory"),
                    ));
                }
                "--store-snap-every" => {
                    let v = args.next().expect("--store-snap-every needs a value");
                    opts.store_snap_every =
                        v.parse().expect("--store-snap-every must be an integer");
                }
                other => {
                    panic!(
                        "unknown flag {other}; supported: --quick --days N --seeds N --out DIR \
                         --journal DIR --resume --timeout-s S --retries N --shards N \
                         --shard-inflight N --shard-retries N --lease-timeout-s S \
                         --chaos-workers P --agents HOST:PORT,.. --chaos-net P \
                         --store DIR --store-snap-every N"
                    )
                }
            }
        }
        opts
    }

    /// The supervision settings these options describe (including run
    /// recording when `--store DIR` is set).
    pub fn supervisor_options(&self) -> SupervisorOptions {
        SupervisorOptions {
            timeout: self.timeout_s.map(Duration::from_secs_f64),
            retries: self.retries,
            store: self.store_dir.as_ref().map(|root| {
                let mut sc = wrsn_sim::store::StoreConfig::new(root.clone());
                sc.snap_every = self.store_snap_every.max(1);
                sc
            }),
            ..SupervisorOptions::default()
        }
    }

    /// The shard-fabric settings these options describe (meaningful when
    /// [`ExpOptions::shards`] > 0).
    pub fn shard_options(&self) -> ShardOptions {
        ShardOptions {
            shards: self.effective_shards().max(1),
            max_inflight: self.shard_inflight,
            retries: self.shard_retries,
            lease_timeout: Duration::from_secs_f64(self.lease_timeout_s.max(0.1)),
            chaos_workers: self.chaos_workers,
            agents: self.agents.clone(),
            chaos_net: self.chaos_net,
            ..ShardOptions::default()
        }
    }

    /// The shard count after defaults: `--agents` without `--shards`
    /// implies one shard per agent (0 still means "no fabric").
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 && !self.agents.is_empty() {
            self.agents.len()
        } else {
            self.shards
        }
    }

    /// The fabric directory a sharded sweep journals into: `--journal DIR`
    /// when given, otherwise a per-binary subdirectory of the output dir
    /// (so two fig binaries sharing `results/` never collide). Workers
    /// re-derive the identical default because they re-exec the same
    /// binary with the same argv.
    pub fn shard_fabric_dir(&self) -> PathBuf {
        if let Some(dir) = &self.journal_dir {
            return dir.clone();
        }
        let exe = std::env::current_exe()
            .ok()
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "sweep".to_string());
        self.out_dir.join(format!("shards-{exe}"))
    }

    /// The base configuration for this experiment scale.
    pub fn base_config(&self) -> SimConfig {
        let mut cfg = if self.quick {
            SimConfig::small(self.days)
        } else {
            SimConfig::paper_defaults()
        };
        if self.quick {
            cfg.min_batch_demand_j = 20e3;
        }
        cfg.duration_s = self.days * 86_400.0;
        cfg.duration_days = self.days;
        cfg
    }
}

/// A single grid point: a label and a ready-to-run configuration.
pub struct GridPoint {
    /// Row label in the output table.
    pub label: String,
    /// The configuration to simulate.
    pub config: SimConfig,
}

/// Mean report across seeds for one grid point.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// The grid point's label.
    pub label: String,
    /// Mean of each metric over the seeds that completed.
    pub report: EvalReport,
    /// Standard deviation of the travel-energy metric (0 for one seed) —
    /// a cheap stability indicator for the sweep tables.
    pub travel_std_mj: f64,
    /// Seeds whose run panicked (empty on a clean sweep). The mean above
    /// covers the surviving seeds only; a point where *every* seed failed
    /// reports a zeroed mean.
    pub failed_seeds: Vec<u64>,
}

/// Expands a grid into the flat labeled job list the supervised batch
/// driver and the run journal operate on: every `(point, seed)` pair, in
/// point-major order, labeled `"{point.label}/seed={seed}"`.
pub fn grid_jobs(grid: &[GridPoint], seeds: u64) -> Vec<JobSpec> {
    grid.iter()
        .flat_map(|point| {
            (0..seeds).map(|s| JobSpec::new(format!("{}/seed={s}", point.label), &point.config, s))
        })
        .collect()
}

/// Runs every `(grid point, seed)` pair across worker threads and averages
/// per point. Order of the results matches the input grid, and — because
/// the batch driver returns outcomes in job order — every per-point seed
/// sequence is identical whatever the worker count.
///
/// The sweep is crash-isolated: a panicking run (bad parameter point) is
/// reported on stderr and in [`GridResult::failed_seeds`] while every
/// other run completes normally.
pub fn run_grid(grid: Vec<GridPoint>, seeds: u64) -> Vec<GridResult> {
    run_grid_supervised(grid, seeds, &SupervisorOptions::default(), None)
}

/// [`run_grid`] with explicit supervision: a per-attempt wall-clock
/// timeout, bounded retries, and an optional write-ahead [`Journal`]
/// (whose completed jobs are skipped and replayed bit-identically).
pub fn run_grid_supervised(
    grid: Vec<GridPoint>,
    seeds: u64,
    opts: &SupervisorOptions,
    journal: Option<&Journal>,
) -> Vec<GridResult> {
    let jobs = grid_jobs(&grid, seeds);
    let outcomes = batch::run_supervised(&jobs, opts, journal);
    aggregate_grid(grid, seeds, &outcomes)
}

/// Folds per-job outcomes (in [`grid_jobs`] order) back into per-point
/// means — the shared tail of every sweep entry point, so the in-process
/// and sharded paths produce identical tables from identical outcomes.
fn aggregate_grid(
    grid: Vec<GridPoint>,
    seeds: u64,
    outcomes: &[Result<SimOutcome, JobPanic>],
) -> Vec<GridResult> {
    grid.into_iter()
        .zip(outcomes.chunks(seeds.max(1) as usize))
        .map(|(point, chunk)| {
            let mut rs: Vec<EvalReport> = Vec::new();
            let mut failed_seeds = Vec::new();
            for (seed, outcome) in chunk.iter().enumerate() {
                match outcome {
                    Ok(o) => rs.push(o.report),
                    Err(e) => {
                        failed_seeds.push(seed as u64);
                        eprintln!(
                            "warning: grid point '{}' seed {seed} failed: {e}",
                            point.label
                        );
                    }
                }
            }
            let mean = mean_report(&rs);
            let travel: Vec<f64> = rs.iter().map(|r| r.travel_energy_mj).collect();
            let travel_std_mj = Summary::of(&travel).map(|s| s.std_dev).unwrap_or(0.0);
            GridResult {
                label: point.label,
                report: mean,
                travel_std_mj,
                failed_seeds,
            }
        })
        .collect()
}

/// The figure binaries' standard sweep entry point: honors the
/// `--journal`/`--resume`/`--timeout-s`/`--retries` flags in `opts`,
/// creating or resuming the journal as requested, and `--shards N`, which
/// moves execution onto the fault-tolerant sharded fabric (worker
/// processes with per-shard journals, lease supervision and byte-stable
/// merge — DESIGN.md §4g).
///
/// # Panics
/// Panics when `--resume` is set against a missing or drifted journal
/// (the journal's grid hash pins labels, seeds and configs), or when the
/// shard fabric cannot run (e.g. a drifted shard manifest).
pub fn run_sweep(grid: Vec<GridPoint>, opts: &ExpOptions) -> Vec<GridResult> {
    let jobs = grid_jobs(&grid, opts.seeds);
    let outcomes = run_jobs(&jobs, opts);
    aggregate_grid(grid, opts.seeds, &outcomes)
}

/// Runs pre-built labeled jobs under the options' execution regime:
/// sharded worker processes when `--shards N` is set, otherwise the
/// in-process supervised (and optionally journaled) batch driver. Results
/// come back in job order either way, bit-identical across regimes, so
/// callers' tables and CSVs never depend on how the sweep was executed.
///
/// In a shard *worker* process this call never returns — the worker runs
/// its shard range, journals it, and exits before any caller code after
/// `run_jobs` (table rendering, CSV writing) executes.
///
/// # Panics
/// Panics on journal/fabric errors, as [`run_sweep`] does.
pub fn run_jobs(jobs: &[JobSpec], opts: &ExpOptions) -> Vec<Result<SimOutcome, JobPanic>> {
    let sup = opts.supervisor_options();
    if opts.effective_shards() > 0 {
        let dir = opts.shard_fabric_dir();
        return run_sharded(jobs, &sup, &dir, &opts.shard_options(), opts.resume)
            .unwrap_or_else(|e| panic!("sharded sweep in {}: {e}", dir.display()));
    }
    let journal = opts.journal_dir.as_ref().map(|dir| {
        let journal = if opts.resume {
            Journal::resume(dir, jobs)
        } else {
            Journal::create(dir, jobs)
        }
        .unwrap_or_else(|e| panic!("cannot open run journal in {}: {e}", dir.display()));
        if opts.resume {
            eprintln!(
                "resuming from {}: {} of {} runs already complete",
                journal.path().display(),
                journal.completed_count(),
                jobs.len()
            );
        }
        journal
    });
    batch::run_supervised(jobs, &sup, journal.as_ref())
}

fn mean_report(rs: &[EvalReport]) -> EvalReport {
    let n = rs.len().max(1) as f64;
    let avg = |f: fn(&EvalReport) -> f64| rs.iter().map(f).sum::<f64>() / n;
    EvalReport {
        travel_distance_m: avg(|r| r.travel_distance_m),
        travel_energy_mj: avg(|r| r.travel_energy_mj),
        recharged_mj: avg(|r| r.recharged_mj),
        objective_mj: avg(|r| r.objective_mj),
        coverage_ratio_pct: avg(|r| r.coverage_ratio_pct),
        missing_rate_pct: avg(|r| r.missing_rate_pct),
        nonfunctional_pct: avg(|r| r.nonfunctional_pct),
        recharging_cost_m_per_sensor: avg(|r| r.recharging_cost_m_per_sensor),
        recharge_visits: (rs.iter().map(|r| r.recharge_visits).sum::<u64>() as f64 / n) as u64,
    }
}

/// The ERP sweep the paper's Figs. 5–7 use on their x axes.
pub fn erp_sweep() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_core::SchedulerKind;

    #[test]
    fn grid_runs_in_parallel_and_keeps_order() {
        let mk = |label: &str, seed_days: f64| {
            let mut cfg = SimConfig::small(seed_days);
            cfg.num_sensors = 40;
            cfg.num_targets = 2;
            cfg.scheduler = SchedulerKind::Greedy;
            GridPoint {
                label: label.to_string(),
                config: cfg,
            }
        };
        let results = run_grid(vec![mk("a", 0.2), mk("b", 0.2)], 2);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "a");
        assert_eq!(results[1].label, "b");
        assert!(results[0].report.coverage_ratio_pct >= 0.0);
        assert!(results.iter().all(|r| r.failed_seeds.is_empty()));
    }

    #[test]
    fn bad_grid_point_does_not_kill_the_sweep() {
        let mut good = SimConfig::small(0.1);
        good.num_sensors = 40;
        good.num_targets = 2;
        let mut bad = good.clone();
        bad.tick_s = f64::NAN; // rejected by SimConfig::validate
        let results = run_grid(
            vec![
                GridPoint {
                    label: "good".into(),
                    config: good,
                },
                GridPoint {
                    label: "bad".into(),
                    config: bad,
                },
            ],
            2,
        );
        assert_eq!(results.len(), 2, "the sweep must finish");
        assert!(results[0].failed_seeds.is_empty());
        assert!(results[0].report.travel_distance_m >= 0.0);
        assert_eq!(results[1].failed_seeds, vec![0, 1]);
    }

    #[test]
    fn erp_sweep_covers_unit_interval() {
        let s = erp_sweep();
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[10], 1.0);
    }

    #[test]
    fn timed_out_point_lands_in_failed_seeds() {
        let mut quick = SimConfig::small(0.05);
        quick.num_sensors = 40;
        quick.num_targets = 2;
        quick.scheduler = SchedulerKind::Greedy;
        let mut slow = SimConfig::paper_defaults(); // 500 sensors, 120 days
        slow.scheduler = SchedulerKind::Greedy;
        let grid = vec![
            GridPoint {
                label: "quick".into(),
                config: quick,
            },
            GridPoint {
                label: "slow".into(),
                config: slow,
            },
        ];
        let opts = SupervisorOptions {
            timeout: Some(Duration::from_millis(40)),
            retries: 1,
            retry_backoff: Duration::from_millis(1),
            workers: std::num::NonZeroUsize::new(1),
            ..SupervisorOptions::default()
        };
        let results = run_grid_supervised(grid, 1, &opts, None);
        assert_eq!(results.len(), 2, "the sweep must finish around the timeout");
        assert_eq!(
            results[1].failed_seeds,
            vec![0],
            "the timed-out seed must be reported"
        );
    }

    #[test]
    fn journaled_sweep_resumes_with_identical_results() {
        let dir = std::env::temp_dir().join(format!("wrsn-bench-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mk = || {
            let mut cfg = SimConfig::small(0.1);
            cfg.num_sensors = 40;
            cfg.num_targets = 2;
            cfg.scheduler = SchedulerKind::Greedy;
            vec![
                GridPoint {
                    label: "a".into(),
                    config: cfg.clone(),
                },
                GridPoint {
                    label: "b".into(),
                    config: cfg,
                },
            ]
        };
        let mut opts = ExpOptions {
            seeds: 2,
            journal_dir: Some(dir.clone()),
            ..ExpOptions::default()
        };
        let first = run_sweep(mk(), &opts);
        opts.resume = true;
        let second = run_sweep(mk(), &opts); // every run replayed from the journal
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.report, b.report);
            assert_eq!(a.travel_std_mj, b.travel_std_mj);
            assert!(a.failed_seeds.is_empty() && b.failed_seeds.is_empty());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_mode_shrinks_the_network() {
        let opts = ExpOptions {
            quick: true,
            days: 5.0,
            ..Default::default()
        };
        let cfg = opts.base_config();
        assert!(cfg.num_sensors < 500);
        assert_eq!(cfg.duration_days, 5.0);
    }
}
