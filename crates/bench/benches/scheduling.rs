//! Criterion benches for the recharge schedulers — the §IV-E complexity
//! claims (Eqs. 16–20): greedy is O(n²) over the recharge list; the
//! insertion builder is O(n²)–O(n³); Partition adds the K-means cost but
//! divides the list by m; Combined pays the global insertion per RV.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use wrsn_core::{
    CombinedPolicy, DeadlinePolicy, GreedyPolicy, InsertionPolicy, PartitionPolicy, RechargePolicy,
    RechargeRequest, RvId, RvState, SavingsPolicy, ScheduleInput, SensorId,
};
use wrsn_geom::Point2;

fn synthetic_input(n: usize, m: usize, seed: u64) -> ScheduleInput {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let requests = (0..n)
        .map(|i| RechargeRequest {
            sensor: SensorId(i as u32),
            position: Point2::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)),
            demand: rng.gen_range(2_000.0..8_000.0),
            cluster: None,
            critical: false,
        })
        .collect();
    let rvs = (0..m)
        .map(|i| RvState {
            id: RvId(i as u32),
            position: Point2::new(100.0, 100.0),
            available_energy: 135e3,
        })
        .collect();
    ScheduleInput {
        requests,
        rvs,
        base: Point2::new(100.0, 100.0),
        cost_per_m: 5.6,
    }
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    for &n in &[10usize, 25, 50, 100, 200] {
        let input = synthetic_input(n, 3, 7);
        group.bench_with_input(BenchmarkId::new("greedy", n), &input, |b, inp| {
            b.iter(|| GreedyPolicy.plan(inp))
        });
        group.bench_with_input(BenchmarkId::new("insertion", n), &input, |b, inp| {
            b.iter(|| InsertionPolicy.plan(inp))
        });
        group.bench_with_input(BenchmarkId::new("partition", n), &input, |b, inp| {
            let policy = PartitionPolicy::new(1);
            b.iter(|| policy.plan(inp))
        });
        group.bench_with_input(BenchmarkId::new("combined", n), &input, |b, inp| {
            b.iter(|| CombinedPolicy.plan(inp))
        });
        group.bench_with_input(BenchmarkId::new("savings", n), &input, |b, inp| {
            b.iter(|| SavingsPolicy.plan(inp))
        });
        group.bench_with_input(BenchmarkId::new("deadline", n), &input, |b, inp| {
            let policy = DeadlinePolicy::default();
            b.iter(|| policy.plan(inp))
        });
    }
    group.finish();
}

/// A budget sized for long routes: the cached-vs-naive gap scales with the
/// number of insertion rounds, so the builder benchmark wants ~100 stops.
fn builder_input(n: usize, seed: u64) -> ScheduleInput {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut input = synthetic_input(n, 1, seed);
    // Demands small relative to the budget so the route keeps growing —
    // at n=1000 nearly every site ends up inserted, which is the regime
    // (paper-scale RV capacity vs sensor-scale demands) where the naive
    // per-round rescan hurts most.
    for (i, r) in input.requests.iter_mut().enumerate() {
        r.demand = rng.gen_range(300.0..900.0);
        // Pair up a third of the requests so site aggregation is
        // exercised without mega-clusters swallowing the budget.
        if i % 3 == 0 {
            r.cluster = Some(wrsn_core::ClusterId((i / 6) as u32));
        }
        if i % 11 == 0 {
            r.critical = true;
        }
    }
    input.rvs[0].available_energy = 1e6;
    input
}

fn bench_builder_cache(c: &mut Criterion) {
    use wrsn_core::scheduling::oracle::{cached_site_route, naive_site_route};

    let mut group = c.benchmark_group("builder");
    // The naive builder at 1000 sites runs tens of milliseconds per plan;
    // a small sample keeps the bench finite without losing the median.
    group.sample_size(10);
    for &n in &[10usize, 100, 1000] {
        let input = builder_input(n, 13);
        // Divergence gate: the bench doubles as a smoke test, so a cached
        // route that differs from the oracle's fails the run outright.
        assert_eq!(
            cached_site_route(&input),
            naive_site_route(&input),
            "cached builder diverged from the naive oracle at n={n}"
        );
        group.bench_with_input(BenchmarkId::new("naive", n), &input, |b, inp| {
            b.iter(|| naive_site_route(inp))
        });
        group.bench_with_input(BenchmarkId::new("cached", n), &input, |b, inp| {
            b.iter(|| cached_site_route(inp))
        });
    }
    group.finish();
}

fn bench_fleet_width(c: &mut Criterion) {
    // Eq. (19)/(20): Partition divides the list into m groups while
    // Combined re-plans globally per RV — scaling in the RV count.
    let mut group = c.benchmark_group("fleet_width");
    for &m in &[1usize, 3, 6, 12] {
        let input = synthetic_input(100, m, 11);
        group.bench_with_input(BenchmarkId::new("partition", m), &input, |b, inp| {
            let policy = PartitionPolicy::new(1);
            b.iter(|| policy.plan(inp))
        });
        group.bench_with_input(BenchmarkId::new("combined", m), &input, |b, inp| {
            b.iter(|| CombinedPolicy.plan(inp))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_builder_cache,
    bench_fleet_width
);
criterion_main!(benches);
