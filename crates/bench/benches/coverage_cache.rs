//! Coverage-cache benchmark: the per-sample-tick coverage/alive
//! accounting, naive recompute vs. the incremental cache.
//!
//! The naive path rescans every cluster member and every battery per
//! call, so it scales with sensors × targets; the cached path reads the
//! event-maintained counters (O(dirty clusters), O(1) when settled).
//! The `sim_tick` series prices one full engine tick at each scale —
//! the loop the cache was built to unblock.
//! `results/BENCH_coverage.json` snapshots a run of this bench; refresh
//! it with `cargo bench -p wrsn-bench --bench coverage_cache`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wrsn_sim::{SimConfig, World};

/// A field at the seed tests' sensor density (60 sensors on a 60 m
/// square), scaled to `sensors` with one target per ~20 sensors.
fn scaled_world(sensors: usize) -> World {
    let mut cfg = SimConfig::small(1.0);
    cfg.num_sensors = sensors;
    cfg.num_targets = (sensors / 20).max(1);
    cfg.num_rvs = 1;
    cfg.field_side = 60.0 * (sensors as f64 / 60.0).sqrt();
    cfg.initial_soc = (0.1, 1.0); // mixed health: deaths happen early
    let mut w = World::new(&cfg, 42);
    // Step past a few slot boundaries so rotas, deaths and routing state
    // look like a mid-run world rather than a freshly built one.
    for _ in 0..30 {
        w.step();
    }
    w
}

fn bench_coverage_accounting(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_cache");
    group.sample_size(20);
    for &sensors in &[100usize, 1_000, 10_000] {
        let world = scaled_world(sensors);
        group.bench_with_input(
            BenchmarkId::new("naive", sensors),
            &world,
            |b, w: &World| {
                b.iter(|| {
                    (
                        black_box(w.oracle_coverage_ratio()),
                        black_box(w.oracle_alive_count()),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached", sensors),
            &world,
            |b, w: &World| b.iter(|| (black_box(w.coverage_ratio()), black_box(w.alive_count()))),
        );
        // One full sample tick of the simulation at this scale — the
        // loop the cache was built to unblock. Dominated by drain/fleet
        // phases once coverage accounting is O(dirty).
        let mut stepping = scaled_world(sensors);
        group.bench_with_input(
            BenchmarkId::new("sim_tick", sensors),
            &(),
            |b, _unit: &()| {
                b.iter(|| {
                    stepping.step();
                    black_box(stepping.time())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coverage_accounting);
criterion_main!(benches);
