//! Criterion benches for the simulation engine: simulated-time throughput
//! at the paper's Table II scale and at the quarter scale the tests use.

use criterion::{criterion_group, criterion_main, Criterion};
use wrsn_sim::{SimConfig, World};

fn bench_paper_scale_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_day");
    group.sample_size(10);
    group.bench_function("paper_scale_500_sensors", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::paper_defaults();
            cfg.duration_s = 86_400.0;
            cfg.duration_days = 1.0;
            World::new(&cfg, 1).run()
        })
    });
    group.bench_function("quarter_scale_125_sensors", |b| {
        b.iter(|| {
            let cfg = SimConfig::small(1.0);
            World::new(&cfg, 1).run()
        })
    });
    group.finish();
}

fn bench_world_construction(c: &mut Criterion) {
    c.bench_function("world_new_paper_scale", |b| {
        let cfg = SimConfig::paper_defaults();
        b.iter(|| World::new(&cfg, 1))
    });
}

criterion_group!(benches, bench_paper_scale_day, bench_world_construction);
criterion_main!(benches);
