//! Tick-scaling benchmark for the event-proportional engine: one full
//! `World::step` at 100 / 1k / 10k / 100k sensors (constant density, so
//! per-sensor work is the honest unit), next to the naive wholesale
//! routing pipeline priced at the same scales — plus the million-sensor
//! variants behind `WRSN_BENCH_1M=1`.
//!
//! * `step` — one engine tick on a warmed mid-run world with mixed
//!   battery health (deaths, requests, revivals). With the SoC crossing
//!   heap + chunked drain + dirty-set routing this costs event- rather
//!   than population-proportional time.
//! * `naive_refresh` — the historical per-refresh pipeline: a
//!   from-scratch canonical Dijkstra rebuild + full relay-load fold +
//!   wholesale activity recompute, via [`World::verify_routing`]. The
//!   audit *asserts* the maintained tree equals that naive recompute
//!   before returning, so a divergence fails this bench outright — the
//!   `--test` run in CI's bench-smoke / tick-scale-smoke jobs is the
//!   release-profile divergence gate.
//! * `step_quiescent` — one tick on a healthy (90–100 % SoC) world at
//!   100k and (env-gated) 1M sensors: nothing crosses, nothing dies, so
//!   this prices the pure per-tick floor. Sublinear growth between 100k
//!   and 1M is the headline claim in `results/BENCH_tick.json`.
//! * `step_waypoint` — the quiescent world under continuous
//!   random-waypoint target motion (incremental cluster repair on the
//!   hot path instead of the rare teleport rebuild).
//!
//! Setting `WRSN_TICK_PHASES=1` additionally prints a per-phase
//! breakdown (via [`World::step_timed`]) before the criterion run.
//! `results/BENCH_tick.json` snapshots a run of this bench; refresh it
//! with `WRSN_BENCH_1M=1 WRSN_TICK_PHASES=1 cargo bench -p wrsn-bench
//! --bench tick`.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use wrsn_sim::{SimConfig, StepTimings, TargetMobility, World};

/// A field at the seed tests' sensor density (60 sensors on a 60 m
/// square) scaled to `sensors`, with a capped target count so the
/// clustering stage stays comparable across scales.
fn scaled_cfg(sensors: usize) -> SimConfig {
    let mut cfg = SimConfig::small(1.0);
    cfg.num_sensors = sensors;
    cfg.num_targets = (sensors / 20).clamp(1, 20);
    cfg.num_rvs = 2;
    cfg.field_side = 60.0 * (sensors as f64 / 60.0).sqrt();
    cfg
}

/// Steps past a few slot boundaries so rotas, deaths and the dirty sets
/// look like a mid-run world rather than a freshly built one.
fn warmed(cfg: &SimConfig) -> World {
    let mut w = World::new(cfg, 42);
    for _ in 0..30 {
        w.step();
    }
    w
}

fn scaled_world(sensors: usize) -> World {
    let mut cfg = scaled_cfg(sensors);
    cfg.initial_soc = (0.1, 1.0); // mixed health: deaths, requests, revivals
    warmed(&cfg)
}

/// Healthy fleet-free steady state: no crossings, no deaths, no routes —
/// the quiescent-tick floor the crossing heap is supposed to expose.
fn quiescent_world(sensors: usize) -> World {
    let mut cfg = scaled_cfg(sensors);
    cfg.initial_soc = (0.9, 1.0);
    warmed(&cfg)
}

/// Quiescent world under continuous random-waypoint target motion:
/// cluster maintenance runs incremental repair instead of waiting for
/// the teleport period.
fn waypoint_world(sensors: usize) -> World {
    let mut cfg = scaled_cfg(sensors);
    cfg.initial_soc = (0.9, 1.0);
    cfg.target_mobility = TargetMobility::RandomWaypoint { speed_mps: 0.5 };
    warmed(&cfg)
}

/// Million-sensor points are opt-in: they dominate wall-clock time.
fn million_enabled() -> bool {
    std::env::var_os("WRSN_BENCH_1M").is_some_and(|v| v != "0")
}

/// `WRSN_TICK_PHASES=1`: prints the mean per-phase ns over `ticks`
/// timed steps of each quiescent world, for `results/BENCH_tick.json`'s
/// phase breakdown.
fn print_phase_breakdown() {
    if std::env::var_os("WRSN_TICK_PHASES").is_none() {
        return;
    }
    let mut sizes = vec![10_000usize, 100_000];
    if million_enabled() {
        sizes.push(1_000_000);
    }
    for sensors in sizes {
        let mut w = quiescent_world(sensors);
        let ticks = 50u64;
        let mut sum = StepTimings::default();
        for _ in 0..ticks {
            let t = w.step_timed();
            sum.mobility_ns += t.mobility_ns;
            sum.activity_ns += t.activity_ns;
            sum.faults_ns += t.faults_ns;
            sum.routing_ns += t.routing_ns;
            sum.drain_ns += t.drain_ns;
            sum.dispatch_ns += t.dispatch_ns;
            sum.fleet_ns += t.fleet_ns;
            sum.sample_ns += t.sample_ns;
        }
        eprintln!(
            "tick-phases sensors={sensors} ticks={ticks} mean_ns: mobility={} activity={} \
             faults={} routing={} drain={} dispatch={} fleet={} sample={} total={}",
            sum.mobility_ns / ticks,
            sum.activity_ns / ticks,
            sum.faults_ns / ticks,
            sum.routing_ns / ticks,
            sum.drain_ns / ticks,
            sum.dispatch_ns / ticks,
            sum.fleet_ns / ticks,
            sum.sample_ns / ticks,
            sum.total_ns() / ticks
        );
    }
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("tick");
    group.sample_size(10);
    for &sensors in &[100usize, 1_000, 10_000, 100_000] {
        let mut stepping = scaled_world(sensors);
        group.bench_with_input(BenchmarkId::new("step", sensors), &(), |b, _unit: &()| {
            b.iter(|| {
                stepping.step();
                black_box(stepping.time())
            })
        });
        // The wholesale pipeline the incremental path replaced, plus the
        // bitwise equality gate against the maintained tree.
        let mut audited = scaled_world(sensors);
        group.bench_with_input(
            BenchmarkId::new("naive_refresh", sensors),
            &(),
            |b, _unit: &()| {
                b.iter(|| {
                    audited
                        .verify_routing()
                        .expect("incremental routing diverged from the naive oracle");
                })
            },
        );
    }

    let mut quiescent_sizes = vec![100_000usize];
    let mut waypoint_sizes = vec![10_000usize, 100_000];
    if million_enabled() {
        quiescent_sizes.push(1_000_000);
        waypoint_sizes.push(1_000_000);
    }
    for &sensors in &quiescent_sizes {
        let mut stepping = quiescent_world(sensors);
        group.bench_with_input(
            BenchmarkId::new("step_quiescent", sensors),
            &(),
            |b, _unit: &()| {
                b.iter(|| {
                    stepping.step();
                    black_box(stepping.time())
                })
            },
        );
        // Release-profile gate for the 1M config: the maintained tree
        // must still verify bitwise against the naive oracle at scale.
        stepping
            .verify_routing()
            .expect("incremental routing diverged from the naive oracle at scale");
    }
    for &sensors in &waypoint_sizes {
        let mut stepping = waypoint_world(sensors);
        group.bench_with_input(
            BenchmarkId::new("step_waypoint", sensors),
            &(),
            |b, _unit: &()| {
                b.iter(|| {
                    stepping.step();
                    black_box(stepping.time())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tick);

fn main() {
    print_phase_breakdown();
    let mut c = Criterion::from_args();
    benches(&mut c);
    c.final_summary();
}
