//! Tick-scaling benchmark for the SoA + event-incremental routing
//! engine: one full `World::step` at 100 / 1k / 10k / 100k sensors
//! (constant density, so per-sensor work is the honest unit), next to
//! the naive wholesale routing pipeline priced at the same scales.
//!
//! * `step` — one engine tick on a warmed mid-run world. With the
//!   dirty-set routing repair this should cost a flat number of ns per
//!   sensor across the whole range; the pre-SoA engine grew superlinear
//!   here (851 ns/sensor at 10k vs 118 at 1k, `BENCH_coverage.json`).
//! * `naive_refresh` — the historical per-refresh pipeline: a
//!   from-scratch canonical Dijkstra rebuild + full relay-load fold +
//!   wholesale activity recompute, via [`World::verify_routing`]. The
//!   audit *asserts* the maintained tree equals that naive recompute
//!   before returning, so a divergence fails this bench outright — the
//!   `--test` run in CI's bench-smoke job is the release-profile
//!   divergence gate.
//!
//! `results/BENCH_tick.json` snapshots a run of this bench; refresh it
//! with `cargo bench -p wrsn-bench --bench tick`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wrsn_sim::{SimConfig, World};

/// A field at the seed tests' sensor density (60 sensors on a 60 m
/// square) scaled to `sensors`, with a capped target count so the
/// clustering stage stays comparable across scales.
fn scaled_world(sensors: usize) -> World {
    let mut cfg = SimConfig::small(1.0);
    cfg.num_sensors = sensors;
    cfg.num_targets = (sensors / 20).clamp(1, 20);
    cfg.num_rvs = 2;
    cfg.field_side = 60.0 * (sensors as f64 / 60.0).sqrt();
    cfg.initial_soc = (0.1, 1.0); // mixed health: deaths, requests, revivals
    let mut w = World::new(&cfg, 42);
    // Step past a few slot boundaries so rotas, deaths and the routing
    // dirty-set look like a mid-run world rather than a freshly built one.
    for _ in 0..30 {
        w.step();
    }
    w
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("tick");
    group.sample_size(10);
    for &sensors in &[100usize, 1_000, 10_000, 100_000] {
        let mut stepping = scaled_world(sensors);
        group.bench_with_input(BenchmarkId::new("step", sensors), &(), |b, _unit: &()| {
            b.iter(|| {
                stepping.step();
                black_box(stepping.time())
            })
        });
        // The wholesale pipeline the incremental path replaced, plus the
        // bitwise equality gate against the maintained tree.
        let mut audited = scaled_world(sensors);
        group.bench_with_input(
            BenchmarkId::new("naive_refresh", sensors),
            &(),
            |b, _unit: &()| {
                b.iter(|| {
                    audited
                        .verify_routing()
                        .expect("incremental routing diverged from the naive oracle");
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tick);
criterion_main!(benches);
