//! Criterion benches for Algorithm 1 — the §III-A complexity claim:
//! O(MN + |A|·M log M), bounded by O(MN log M).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use wrsn_core::{balanced_clusters, CoverageMap};
use wrsn_geom::Point2;

fn deployment(n: usize, m: usize, seed: u64) -> (Vec<Point2>, Vec<Point2>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let sensors = (0..n)
        .map(|_| Point2::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)))
        .collect();
    let targets = (0..m)
        .map(|_| Point2::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)))
        .collect();
    (sensors, targets)
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("balanced_clustering");
    for &(n, m) in &[(100usize, 5usize), (500, 15), (1000, 15), (2000, 30)] {
        let (sensors, targets) = deployment(n, m, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("N{n}_M{m}")),
            &(sensors, targets),
            |b, (s, t)| {
                b.iter(|| {
                    let cov = CoverageMap::build(s, t, 8.0);
                    balanced_clusters(&cov)
                })
            },
        );
    }
    group.finish();
}

fn bench_coverage_map_only(c: &mut Criterion) {
    let (sensors, targets) = deployment(500, 15, 3);
    c.bench_function("coverage_map_500x15", |b| {
        b.iter(|| CoverageMap::build(&sensors, &targets, 8.0))
    });
}

criterion_group!(benches, bench_clustering, bench_coverage_map_only);
criterion_main!(benches);
