//! Criterion benches for the substrate crates: spatial index queries,
//! Dijkstra routing at deployment scale, K-means, and the TSP solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use wrsn_geom::{GridIndex, Point2};
use wrsn_net::{relay_loads, shortest_paths, CommGraph, RoutingTree};
use wrsn_opt::{
    held_karp_tour, improve_tour, kmeans, nearest_neighbor_tour, two_opt, DistMatrix, KMeansConfig,
};

fn points(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)))
        .collect()
}

fn bench_grid_index(c: &mut Criterion) {
    let pts = points(500, 1);
    let grid = GridIndex::build(&pts, 8.0);
    c.bench_function("grid_build_500", |b| b.iter(|| GridIndex::build(&pts, 8.0)));
    c.bench_function("grid_query_500", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % pts.len();
            grid.within(pts[i], 12.0)
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let pts = points(501, 2);
    let graph = CommGraph::build(&pts, 12.0);
    c.bench_function("comm_graph_build_501", |b| {
        b.iter(|| CommGraph::build(&pts, 12.0))
    });
    c.bench_function("dijkstra_501", |b| b.iter(|| shortest_paths(&graph, 0)));
    c.bench_function("routing_tree_and_loads_501", |b| {
        let gen: Vec<f64> = (0..graph.len())
            .map(|i| if i % 10 == 0 { 0.25 } else { 0.0 })
            .collect();
        b.iter(|| {
            let tree = RoutingTree::toward(&graph, 0);
            relay_loads(&tree, &gen)
        })
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for &n in &[50usize, 200, 500] {
        let pts = points(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(9);
                kmeans(pts, 3, &KMeansConfig::default(), &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_tsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsp");
    for &n in &[8usize, 12] {
        let m = DistMatrix::from_points(&points(n, 4));
        group.bench_with_input(BenchmarkId::new("held_karp", n), &m, |b, m| {
            b.iter(|| held_karp_tour(m))
        });
    }
    for &n in &[10usize, 50, 200] {
        let m = DistMatrix::from_points(&points(n, 4));
        group.bench_with_input(BenchmarkId::new("nearest_neighbor", n), &m, |b, m| {
            b.iter(|| nearest_neighbor_tour(m, 0))
        });
        group.bench_with_input(BenchmarkId::new("nn_plus_2opt", n), &m, |b, m| {
            b.iter(|| {
                let mut tour = nearest_neighbor_tour(m, 0);
                two_opt(m, &mut tour);
                tour
            })
        });
        group.bench_with_input(
            BenchmarkId::new("full_stack_nn_2opt_oropt", n),
            &m,
            |b, m| b.iter(|| improve_tour(m, 0)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_grid_index,
    bench_routing,
    bench_kmeans,
    bench_tsp
);
criterion_main!(benches);
