//! # wrsn — Joint Wireless Charging and Sensor Activity Management
//!
//! A full Rust implementation of the **JRSSAM** framework from
//! *"Joint Wireless Charging and Sensor Activity Management in Wireless
//! Rechargeable Sensor Networks"* (Gao, Wang, Yang — ICPP 2015), including
//! every substrate its evaluation depends on.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`geom`] | `wrsn-geom` | 2-D geometry, random deployment, grid index, Eq. (1) |
//! | [`energy`] | `wrsn-energy` | Ni-MH battery, CC2480 radio, PIR detector, RV energy |
//! | [`net`] | `wrsn-net` | unit-disk comm graph, Dijkstra routing, relay traffic |
//! | [`opt`] | `wrsn-opt` | K-means, TSP solvers, exact TSP-with-profits |
//! | [`core`] | `wrsn-core` | Algorithm 1 clustering, ERP control, round-robin, Algorithms 2–3, Partition/Combined schemes |
//! | [`sim`] | `wrsn-sim` | the §V discrete-time evaluation environment |
//! | [`metrics`] | `wrsn-metrics` | the paper's evaluation metrics + reporting |
//!
//! ## Quickstart
//!
//! ```
//! use wrsn::sim::{SimConfig, World};
//! use wrsn::core::SchedulerKind;
//!
//! // A scaled-down network: 2 simulated days, Combined-Scheme scheduling.
//! let mut cfg = SimConfig::small(2.0);
//! cfg.scheduler = SchedulerKind::Combined;
//! let outcome = World::new(&cfg, 42).run();
//! println!(
//!     "RV travel: {:.3} MJ, coverage: {:.1}%",
//!     outcome.report.travel_energy_mj, outcome.report.coverage_ratio_pct
//! );
//! assert!(outcome.report.coverage_ratio_pct > 50.0);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate every figure of the paper's evaluation.

pub use wrsn_core as core;
pub use wrsn_energy as energy;
pub use wrsn_geom as geom;
pub use wrsn_metrics as metrics;
pub use wrsn_net as net;
pub use wrsn_opt as opt;
pub use wrsn_sim as sim;

/// Workspace version, for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
