//! Cross-crate integration tests: full simulations driven through the
//! public facade, checking engine invariants that span every crate.

use wrsn::core::SchedulerKind;
use wrsn::sim::{ActivityConfig, SimConfig, World};

fn test_cfg(days: f64) -> SimConfig {
    let mut cfg = SimConfig::small(days);
    cfg.num_sensors = 80;
    cfg.num_targets = 4;
    cfg.field_side = 80.0;
    cfg.min_batch_demand_j = 20e3;
    // Start some sensors below the recharge threshold so request and
    // recharge activity begins immediately even in short runs.
    cfg.initial_soc = (0.4, 1.0);
    cfg
}

#[test]
fn energy_flows_are_consistent() {
    for kind in SchedulerKind::EVALUATED {
        let mut cfg = test_cfg(4.0);
        cfg.scheduler = kind;
        let out = World::new(&cfg, 3).run();

        // The engine and the metrics layer must agree on delivered energy.
        assert!(
            (out.report.recharged_mj * 1e6 - out.total_delivered_j).abs() < 1e-6,
            "{kind}: ledger mismatch"
        );
        // RVs never spend energy they do not have.
        assert!(
            out.rv_energy_shortfall_j < 1.0,
            "{kind}: shortfall {}",
            out.rv_energy_shortfall_j
        );
        // Something actually happened.
        assert!(out.total_drained_j > 0.0, "{kind}: nothing drained");
        assert!(out.report.recharged_mj > 0.0, "{kind}: nothing recharged");
        // Objective is consistent with its parts.
        assert!(
            (out.report.objective_mj - (out.report.recharged_mj - out.report.travel_energy_mj))
                .abs()
                < 1e-9
        );
        // Travel energy = e_m × distance.
        assert!(
            (out.report.travel_energy_mj * 1e6
                - cfg.rv_model.move_j_per_m * out.report.travel_distance_m)
                .abs()
                < 1.0
        );
    }
}

#[test]
fn reports_stay_in_valid_ranges() {
    let mut cfg = test_cfg(3.0);
    cfg.scheduler = SchedulerKind::Partition;
    let out = World::new(&cfg, 11).run();
    let r = &out.report;
    assert!((0.0..=100.0).contains(&r.coverage_ratio_pct));
    assert!((0.0..=100.0).contains(&r.missing_rate_pct));
    assert!((0.0..=100.0).contains(&r.nonfunctional_pct));
    assert!((r.coverage_ratio_pct + r.missing_rate_pct - 100.0).abs() < 1e-6);
    assert!(r.travel_distance_m >= 0.0);
    assert!(out.final_alive <= cfg.num_sensors);
}

#[test]
fn disabling_erc_equals_k_zero() {
    // `erp: None` (prior work) must behave exactly like `erp: Some(0.0)`.
    let mut a = test_cfg(3.0);
    a.activity = ActivityConfig {
        round_robin: true,
        erp: None,
    };
    let mut b = test_cfg(3.0);
    b.activity = ActivityConfig {
        round_robin: true,
        erp: Some(0.0),
    };
    let ra = World::new(&a, 5).run();
    let rb = World::new(&b, 5).run();
    assert_eq!(ra.report, rb.report);
}

#[test]
fn determinism_across_schedulers() {
    for kind in SchedulerKind::EVALUATED {
        let mut cfg = test_cfg(2.0);
        cfg.scheduler = kind;
        let a = World::new(&cfg, 17).run();
        let b = World::new(&cfg, 17).run();
        assert_eq!(a.report, b.report, "{kind} not deterministic");
        assert_eq!(a.deaths, b.deaths);
        assert_eq!(a.plans, b.plans);
    }
}

#[test]
fn stepping_matches_run() {
    let cfg = test_cfg(1.0);
    let from_run = World::new(&cfg, 23).run();
    let mut w = World::new(&cfg, 23);
    while !w.finished() {
        w.step();
    }
    assert_eq!(w.outcome().report, from_run.report);
}

#[test]
fn single_rv_insertion_scheduler_end_to_end() {
    let mut cfg = test_cfg(4.0);
    cfg.num_rvs = 1;
    cfg.scheduler = SchedulerKind::Insertion;
    let out = World::new(&cfg, 9).run();
    assert!(out.plans > 0);
    assert!(out.report.recharged_mj > 0.0);
}

#[test]
fn overloaded_fleet_degrades_gracefully() {
    // Failure injection: one slow RV against a hungry network. The engine
    // must not panic, leak energy, or report impossible metrics even as
    // sensors die.
    let mut cfg = test_cfg(5.0);
    cfg.num_rvs = 1;
    cfg.watch_duty = 1.0; // every sensor drains at full detector power
    cfg.scheduler = SchedulerKind::Greedy;
    let out = World::new(&cfg, 13).run();
    assert!(out.deaths > 0, "overload should kill sensors");
    assert!(out.report.nonfunctional_pct > 0.0);
    assert!(out.rv_energy_shortfall_j < 1.0);
    assert!((0.0..=100.0).contains(&out.report.coverage_ratio_pct));
}

#[test]
fn zero_watch_duty_means_almost_no_recharging() {
    // With detectors fully off outside monitoring, only cluster members
    // drain meaningfully; over 2 days nobody should need the RVs.
    let mut cfg = test_cfg(2.0);
    cfg.watch_duty = 0.0;
    let out = World::new(&cfg, 2).run();
    assert_eq!(out.deaths, 0);
    assert!(out.report.nonfunctional_pct < 1e-9);
}
