//! Experiment X1 (DESIGN.md): validate the paper's heuristics against the
//! exact optimum of the NP-hard recharge problem on small instances — the
//! paper proves hardness (§IV-A) but never measures optimality gaps; we
//! can.

use rand::{Rng, SeedableRng};
use wrsn::core::{
    CombinedPolicy, ExactPolicy, GreedyPolicy, PartitionPolicy, RechargePolicy, RechargeRequest,
    RvId, RvRoute, RvState, ScheduleInput, SensorId,
};
use wrsn::geom::Point2;

fn random_instance(seed: u64, n: usize, m: usize) -> ScheduleInput {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let base = Point2::new(100.0, 100.0);
    let requests = (0..n)
        .map(|i| RechargeRequest {
            sensor: SensorId(i as u32),
            position: Point2::new(rng.gen_range(0.0..200.0), rng.gen_range(0.0..200.0)),
            demand: rng.gen_range(1_000.0..9_000.0),
            cluster: None,
            critical: false,
        })
        .collect();
    let rvs = (0..m)
        .map(|i| RvState {
            id: RvId(i as u32),
            position: base,
            available_energy: 30_000.0,
        })
        .collect();
    ScheduleInput {
        requests,
        rvs,
        base,
        cost_per_m: 5.6,
    }
}

/// Profit judged the MIP's way: closed tours from the base station.
fn closed_tour_profit(input: &ScheduleInput, plan: &[RvRoute]) -> f64 {
    plan.iter()
        .map(|route| {
            if route.stops.is_empty() {
                return 0.0;
            }
            let mut travel = 0.0;
            let mut prev = input.base;
            for &s in &route.stops {
                travel += prev.distance(input.requests[s].position);
                prev = input.requests[s].position;
            }
            travel += prev.distance(input.base);
            input.route_demand(route) - input.cost_per_m * travel
        })
        .sum()
}

#[test]
fn exact_upper_bounds_every_heuristic() {
    for seed in 0..20 {
        let input = random_instance(seed, 7, 2);
        let exact = closed_tour_profit(&input, &ExactPolicy.plan(&input));
        for (name, plan) in [
            ("greedy", GreedyPolicy.plan(&input)),
            ("partition", PartitionPolicy::new(seed).plan(&input)),
            ("combined", CombinedPolicy.plan(&input)),
        ] {
            assert!(
                input.validate_plan(&plan).is_ok(),
                "{name} invalid (seed {seed})"
            );
            let p = closed_tour_profit(&input, &plan);
            assert!(
                p <= exact + 1e-6,
                "{name} beat the optimum on seed {seed}: {p} > {exact}"
            );
        }
    }
}

#[test]
fn combined_scheme_is_near_optimal_on_small_instances() {
    // Quantify the §IV heuristic quality: across random 7-node instances
    // the Combined-Scheme should stay within 25% of the true optimum on
    // average (it is usually much closer).
    let mut ratio_sum = 0.0;
    let mut count = 0;
    for seed in 0..30 {
        let input = random_instance(1_000 + seed, 7, 2);
        let exact = closed_tour_profit(&input, &ExactPolicy.plan(&input));
        if exact <= 0.0 {
            continue;
        }
        let combined = closed_tour_profit(&input, &CombinedPolicy.plan(&input)).max(0.0);
        ratio_sum += combined / exact;
        count += 1;
    }
    assert!(count > 10, "too few positive-profit instances");
    let avg = ratio_sum / count as f64;
    assert!(
        avg > 0.75,
        "combined/exact average ratio {avg:.3} below 0.75"
    );
}

#[test]
fn all_heuristics_respect_capacity_under_pressure() {
    // Tight budgets: capacity barely fits two demands.
    for seed in 100..120 {
        let mut input = random_instance(seed, 9, 3);
        for rv in &mut input.rvs {
            rv.available_energy = 12_000.0;
        }
        for (name, plan) in [
            ("greedy", GreedyPolicy.plan(&input)),
            ("partition", PartitionPolicy::new(seed).plan(&input)),
            ("combined", CombinedPolicy.plan(&input)),
        ] {
            assert!(
                input.validate_plan(&plan).is_ok(),
                "{name} violated capacity on seed {seed}: {:?}",
                input.validate_plan(&plan)
            );
        }
    }
}
