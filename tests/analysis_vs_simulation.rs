//! Cross-validation: the closed-form deployment analysis
//! (`wrsn_core::analysis`) must predict what the simulator measures.

use wrsn::core::DeploymentAnalysis;
use wrsn::sim::{SimConfig, World};

fn analysis_of(cfg: &SimConfig) -> DeploymentAnalysis {
    DeploymentAnalysis {
        num_sensors: cfg.num_sensors,
        // Round-robin: ≈ one monitor per coverable target. With 5 targets
        // on a 100 m field and an 8 m radius, nearly all targets are
        // coverable.
        expected_monitors: cfg.num_targets as f64 * 0.9,
        watch_duty: cfg.watch_duty,
        profile: cfg.sensor_profile,
        battery_j: cfg.battery_capacity_j,
        threshold: cfg.recharge_threshold_frac,
        rv: cfg.rv_model,
        num_rvs: cfg.num_rvs,
    }
}

#[test]
fn predicted_drain_matches_measured_drain() {
    let mut cfg = SimConfig::small(20.0);
    cfg.initial_soc = (1.0, 1.0); // uniform start: drain is the only effect
    let analysis = analysis_of(&cfg);
    let out = World::new(&cfg, 3).run();
    let measured_w = out.total_drained_j / cfg.duration_s;
    let predicted_w = analysis.network_drain_w();
    let ratio = measured_w / predicted_w;
    assert!(
        (0.6..=1.5).contains(&ratio),
        "measured {measured_w:.3} W vs predicted {predicted_w:.3} W (ratio {ratio:.2})"
    );
}

#[test]
fn predicted_request_rate_matches_measured_service_rate() {
    let mut cfg = SimConfig::small(30.0);
    cfg.initial_soc = (0.5, 1.0);
    let analysis = analysis_of(&cfg);
    let out = World::new(&cfg, 5).run();
    let measured_per_day = out.report.recharge_visits as f64 / cfg.duration_days;
    let predicted_per_day = analysis.requests_per_day();
    let ratio = measured_per_day / predicted_per_day;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "measured {measured_per_day:.1}/day vs predicted {predicted_per_day:.1}/day"
    );
}

#[test]
fn sustainable_configuration_actually_sustains() {
    let cfg = SimConfig::small(15.0);
    let analysis = analysis_of(&cfg);
    assert!(
        analysis.is_sustainable(0.7),
        "the default small config should be sustainable"
    );
    let out = World::new(&cfg, 9).run();
    assert!(
        out.report.nonfunctional_pct < 2.0,
        "sustainable config lost {:.2}% of sensors",
        out.report.nonfunctional_pct
    );
}
