//! Shape tests for the paper's headline claims at reduced scale. These are
//! the qualitative regression guards behind EXPERIMENTS.md: each asserts a
//! *direction* ("who wins"), never an absolute number.

use wrsn::core::SchedulerKind;
use wrsn::sim::{ActivityConfig, SimConfig, SimOutcome, World};

fn run(days: f64, scheduler: SchedulerKind, activity: ActivityConfig, seed: u64) -> SimOutcome {
    let mut cfg = SimConfig::small(days);
    cfg.scheduler = scheduler;
    cfg.activity = activity;
    cfg.min_batch_demand_j = 20e3;
    World::new(&cfg, seed).run()
}

#[test]
fn activity_management_saves_travel_energy() {
    // Fig. 4: "With ERC - with RR" beats "No ERC - Full time" under every
    // scheduling scheme.
    for kind in SchedulerKind::EVALUATED {
        let legacy = run(8.0, kind, ActivityConfig::legacy(), 2);
        let managed = run(8.0, kind, ActivityConfig::managed(0.6), 2);
        assert!(
            managed.report.travel_energy_mj < legacy.report.travel_energy_mj,
            "{kind}: managed {:.4} ≥ legacy {:.4}",
            managed.report.travel_energy_mj,
            legacy.report.travel_energy_mj
        );
    }
}

#[test]
fn higher_erp_reduces_travel_energy() {
    // Fig. 5 / Fig. 6(a): K = 0.8 travels less than K = 0 (same workload).
    for kind in SchedulerKind::EVALUATED {
        let k0 = run(8.0, kind, ActivityConfig::managed(0.0), 4);
        let k8 = run(8.0, kind, ActivityConfig::managed(0.8), 4);
        assert!(
            k8.report.travel_energy_mj < k0.report.travel_energy_mj,
            "{kind}: K=0.8 {:.4} ≥ K=0 {:.4}",
            k8.report.travel_energy_mj,
            k0.report.travel_energy_mj
        );
    }
}

#[test]
fn insertion_schemes_beat_greedy_on_travel() {
    // Fig. 6(a): greedy is the travel-hungriest scheme.
    let greedy = run(8.0, SchedulerKind::Greedy, ActivityConfig::managed(0.6), 6);
    let partition = run(
        8.0,
        SchedulerKind::Partition,
        ActivityConfig::managed(0.6),
        6,
    );
    let combined = run(
        8.0,
        SchedulerKind::Combined,
        ActivityConfig::managed(0.6),
        6,
    );
    assert!(partition.report.travel_energy_mj < greedy.report.travel_energy_mj);
    assert!(combined.report.travel_energy_mj < greedy.report.travel_energy_mj);
}

#[test]
fn greedy_has_the_worst_recharging_cost() {
    // Fig. 6(d): recharging cost (m/sensor) is highest for greedy.
    let greedy = run(8.0, SchedulerKind::Greedy, ActivityConfig::managed(0.6), 8);
    let partition = run(
        8.0,
        SchedulerKind::Partition,
        ActivityConfig::managed(0.6),
        8,
    );
    let combined = run(
        8.0,
        SchedulerKind::Combined,
        ActivityConfig::managed(0.6),
        8,
    );
    assert!(
        partition.report.recharging_cost_m_per_sensor < greedy.report.recharging_cost_m_per_sensor
    );
    assert!(
        combined.report.recharging_cost_m_per_sensor < greedy.report.recharging_cost_m_per_sensor
    );
}

#[test]
fn objective_score_favors_insertion_schemes() {
    // Fig. 7(b): the Eq. (2) objective of the insertion-based schemes beats
    // greedy (they recharge as much while traveling far less). Needs a
    // longer horizon than the other shape tests: over the first week the
    // objective is dominated by the initial-SoC recharge transient, whose
    // seed noise exceeds the travel-energy advantage.
    let greedy = run(
        16.0,
        SchedulerKind::Greedy,
        ActivityConfig::managed(0.6),
        10,
    );
    let combined = run(
        16.0,
        SchedulerKind::Combined,
        ActivityConfig::managed(0.6),
        10,
    );
    assert!(combined.report.objective_mj > greedy.report.objective_mj);
}

#[test]
fn coverage_stays_high_at_moderate_erp() {
    // Fig. 6(b): at the paper's operating point (K = 0.6) coverage of
    // coverable targets stays above 95%.
    for kind in SchedulerKind::EVALUATED {
        let o = run(8.0, kind, ActivityConfig::managed(0.6), 12);
        assert!(
            o.report.coverage_ratio_pct > 95.0,
            "{kind}: coverage {:.2}%",
            o.report.coverage_ratio_pct
        );
    }
}
